package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/resilience"

	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// referenceReplay is an independent WAL decoder for the fuzz oracle: it
// re-implements the framing, checksum, and sequencing rules from the format
// documentation (wal.go) without calling scanWAL, then applies the surviving
// records to a plain in-memory store. If scanWAL and this decoder ever
// disagree on a byte image, one of them has drifted from the spec. gap
// reports a log whose first record starts past seq 1 (with no snapshot):
// acknowledged records are missing from the head, and opening must FAIL
// with ErrWALGap rather than recover.
func referenceReplay(data []byte) (ref *Store, gap bool) {
	ref = New([]byte("k"))
	var prev uint64
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail
		}
		line := data[off : off+nl]
		off += nl + 1
		if len(line) < 10 || line[8] != ' ' {
			break
		}
		sum, err := strconv.ParseUint(string(line[:8]), 16, 32)
		if err != nil || crc32.ChecksumIEEE(line[9:]) != uint32(sum) {
			break
		}
		var rec walRecord
		if err := json.Unmarshal(line[9:], &rec); err != nil {
			break
		}
		valid := false
		switch rec.Op {
		case opPut, opDel:
			valid = rec.Path != ""
		case opSweep:
			valid = rec.Path == "" && len(rec.Paths) > 0
		case opBatch:
			valid = rec.Path == "" && len(rec.Paths) == 0 && len(rec.Entries) > 0
			for _, e := range rec.Entries {
				if e.Path == "" {
					valid = false
				}
			}
		}
		if rec.Seq == 0 || !valid {
			break
		}
		if prev == 0 {
			if rec.Seq != 1 {
				return nil, true
			}
		} else if rec.Seq != prev+1 {
			break
		}
		prev = rec.Seq
		switch rec.Op {
		case opPut:
			ref.putAt(rec.Path, rec.Data, time.Unix(0, rec.Created))
		case opDel:
			ref.Delete(rec.Path)
		case opSweep:
			for _, p := range rec.Paths {
				ref.Delete(p)
			}
		case opBatch:
			for _, e := range rec.Entries {
				ref.putAt(e.Path, e.Data, time.Unix(0, e.Created))
			}
		}
	}
	return ref, false
}

// validWALImage builds a well-formed 4-record log for the seed corpus.
func validWALImage(tb testing.TB) []byte {
	tb.Helper()
	var img []byte
	recs := []walRecord{
		{Seq: 1, Op: opPut, Path: "models/u/a.model", Data: []byte("alpha"), Created: 9000},
		{Seq: 2, Op: opPut, Path: "events/j/run-000000.jsonl", Data: []byte("e0"), Created: 9001},
		{Seq: 3, Op: opDel, Path: "events/j/run-000000.jsonl"},
		{Seq: 4, Op: opPut, Path: "models/u/a.model", Data: []byte("alpha-v2"), Created: 9002},
		{Seq: 5, Op: opPut, Path: "events/j/run-000001.jsonl", Data: []byte("e1"), Created: 9003},
		{Seq: 6, Op: opSweep, Paths: []string{"events/j/run-000001.jsonl", "events/j/run-000002.jsonl"}},
		{Seq: 7, Op: opBatch, Entries: []snapEntry{
			{Path: "events/j/run-000003.jsonl", Data: []byte("e3"), Created: 9004},
			{Path: "index/u/sig/j-000003", Created: 9004},
		}},
	}
	for _, rec := range recs {
		line, err := encodeWALRecord(rec)
		if err != nil {
			tb.Fatal(err)
		}
		img = append(img, line...)
	}
	return img
}

// FuzzWALReplay feeds arbitrary byte images to the durable store as its WAL:
// opening must never panic, must recover exactly the longest valid record
// prefix (checked against an independent decoder) — failing open only on a
// head gap, where acknowledged records are provably missing — and must
// leave a store that accepts new writes and survives a second reopen.
func FuzzWALReplay(f *testing.F) {
	valid := validWALImage(f)
	f.Add(valid)
	f.Add(valid[:len(valid)-7])         // torn tail
	f.Add([]byte{})                     // empty log
	f.Add([]byte("00000000 {}\n"))      // framed but invalid record
	f.Add([]byte("not a wal at all\n")) // garbage line
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40 // corrupt a middle record
	f.Add(flipped)
	gapImg, err := encodeWALRecord(walRecord{Seq: 7, Op: opPut, Path: "models/u/a.model"})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(gapImg) // head gap: log starts past seq 1

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walFile), data, 0o600); err != nil {
			t.Fatal(err)
		}
		clock := resilience.NewFakeClock(time.Unix(50000, 0))
		d, err := OpenDurable(dir, []byte("k"), DurableOptions{
			Clock: clock, CompactEvery: -1, NoSync: true,
		})
		ref, gap := referenceReplay(data)
		if gap {
			if !errors.Is(err, ErrWALGap) {
				t.Fatalf("head-gapped WAL must refuse to open with ErrWALGap, got %v", err)
			}
			return
		}
		if err != nil {
			t.Fatalf("corrupt WAL must recover, not fail open: %v", err)
		}
		if got, want := exportOf(d), exportOf(ref); !reflect.DeepEqual(got, want) {
			t.Fatalf("recovered state != longest valid prefix:\n got=%+v\n want=%+v", got, want)
		}
		// Recovery truncated the junk, so the log must be writable again and
		// the new record must survive a reopen.
		if err := d.put("probe/after-fuzz", []byte("ok"), telemetry.SpanContext{}); err != nil {
			t.Fatalf("store not writable after recovery: %v", err)
		}
		ref.putAt("probe/after-fuzz", []byte("ok"), clock.Now())
		if err := d.Err(); err != nil {
			t.Fatal(err)
		}
		d.abandon()
		re, err := OpenDurable(dir, []byte("k"), DurableOptions{
			Clock: clock, CompactEvery: -1, NoSync: true,
		})
		if err != nil {
			t.Fatalf("reopen after recovery: %v", err)
		}
		defer re.Close()
		if got, want := exportOf(re), exportOf(ref); !reflect.DeepEqual(got, want) {
			t.Fatalf("second recovery diverged:\n got=%+v\n want=%+v", got, want)
		}
	})
}
