package core

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/tuners"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

func testEngineAndQuery() (*sparksim.Engine, *sparksim.Query) {
	e := sparksim.NewEngine(sparksim.QuerySpace())
	// Query 2 has ≈28% tuning headroom at the default configuration, so
	// convergence is observable; some signatures (e.g. q4) are nearly flat.
	q := workloads.NewGenerator(99).Query(workloads.TPCDS, 2)
	return e, q
}

// runLoop drives a tuner for iters iterations at constant data size and
// returns the noiseless time trajectory.
func runLoop(t *testing.T, e *sparksim.Engine, q *sparksim.Query, tn tuners.Tuner, iters int, nm noise.Model, seed uint64) []float64 {
	t.Helper()
	r := stats.NewRNG(seed)
	traj := make([]float64, iters)
	for i := 0; i < iters; i++ {
		cfg := tn.Propose(i, q.Plan.LeafInputBytes())
		o := e.Run(q, cfg, 1, r, nm)
		o.Iteration = i
		tn.Observe(o)
		traj[i] = o.TrueTime
	}
	return traj
}

func TestCentroidFirstIterationIsStart(t *testing.T) {
	e, _ := testEngineAndQuery()
	cl := New(e.Space, RandomSelector{RNG: stats.NewRNG(1)}, stats.NewRNG(2))
	cfg := cl.Propose(0, 0)
	def := e.Space.Default()
	for i := range cfg {
		if cfg[i] != def[i] {
			t.Fatalf("iteration 0 must run the default: %v vs %v", cfg, def)
		}
	}
}

func TestCentroidRespectsCustomStart(t *testing.T) {
	e, _ := testEngineAndQuery()
	start := e.Space.With(e.Space.Default(), sparksim.ShufflePartitions, 1500)
	cl := New(e.Space, RandomSelector{RNG: stats.NewRNG(1)}, stats.NewRNG(2))
	cl.Start = start
	cfg := cl.Propose(0, 0)
	if e.Space.Get(cfg, sparksim.ShufflePartitions) != 1500 {
		t.Fatal("custom start ignored")
	}
}

func TestCentroidStaysWithinBeta(t *testing.T) {
	// Regression avoidance: every proposal must stay within β of the
	// current centroid in normalized space.
	e, q := testEngineAndQuery()
	cl := New(e.Space, RandomSelector{RNG: stats.NewRNG(3)}, stats.NewRNG(4))
	cl.Guardrail = nil
	r := stats.NewRNG(5)
	for i := 0; i < 40; i++ {
		center := e.Space.Normalize(cl.Centroid())
		cfg := cl.Propose(i, q.Plan.LeafInputBytes())
		u := e.Space.Normalize(cfg)
		for j := range u {
			if math.Abs(u[j]-center[j]) > cl.Params.Beta+0.02 {
				t.Fatalf("iter %d dim %d: proposal strayed %g beyond beta", i, j, math.Abs(u[j]-center[j]))
			}
		}
		cl.Observe(e.Run(q, cfg, 1, r, noise.Low))
	}
}

func TestCentroidConvergesNoiseless(t *testing.T) {
	e, q := testEngineAndQuery()
	sel := NewSurrogateSelector(e.Space, nil, nil, stats.NewRNG(6))
	cl := New(e.Space, sel, stats.NewRNG(7))
	cl.Guardrail = nil
	traj := runLoop(t, e, q, cl, 80, noise.None, 8)
	start := traj[0]
	final := stats.Mean(traj[70:])
	if final >= start*0.98 {
		t.Fatalf("no convergence: start=%g final=%g", start, final)
	}
}

func TestCentroidRobustUnderHighNoise(t *testing.T) {
	// The headline claim (Figure 10): CL converges under FL=1, SL=1 where
	// single-observation methods stall. Compare the final true-time level
	// against the default config.
	e, q := testEngineAndQuery()
	def := e.TrueTime(q, e.Space.Default(), 1)
	var finals []float64
	for run := uint64(0); run < 5; run++ {
		sel := NewSurrogateSelector(e.Space, nil, nil, stats.NewRNG(10+run))
		cl := New(e.Space, sel, stats.NewRNG(20+run))
		cl.Guardrail = nil
		traj := runLoop(t, e, q, cl, 120, noise.High, 30+run)
		finals = append(finals, stats.Mean(traj[100:]))
	}
	med := stats.Median(finals)
	if med > def*1.02 {
		t.Fatalf("CL regressed under noise: median final %g vs default %g", med, def)
	}
}

func TestFindBestModes(t *testing.T) {
	e, _ := testEngineAndQuery()
	space := e.Space
	mk := func(part float64, size, time float64) sparksim.Observation {
		return sparksim.Observation{
			Config:   space.With(space.Default(), sparksim.ShufflePartitions, part),
			DataSize: size,
			Time:     time,
		}
	}
	// Candidate A ran on tiny data and looks fastest raw; candidate B has
	// the better time per byte at comparable sizes.
	w := []sparksim.Observation{
		mk(100, 1e9, 1000), // 1 µs/KB
		mk(400, 10e9, 4000),
		mk(800, 10e9, 9000),
	}
	cl := New(space, RandomSelector{RNG: stats.NewRNG(1)}, stats.NewRNG(2))

	cl.Params.FindBest = FindBestRaw
	if got := cl.FindBest(w); got.Time != 1000 {
		t.Fatalf("raw should pick the fastest run, got %g", got.Time)
	}
	cl.Params.FindBest = FindBestNormalized
	if got := cl.FindBest(w); got.Time != 4000 {
		t.Fatalf("normalized should pick best time/size, got %g", got.Time)
	}
	cl.Params.FindBest = FindBestModel
	got := cl.FindBest(w)
	if got.Time == 0 {
		t.Fatal("model-based find best returned nothing")
	}
}

func TestFindBestModelPrefersSizeAdjusted(t *testing.T) {
	// Build a window where config X is genuinely better (lower time per
	// byte) but always ran on larger inputs. v1 picks the bad config purely
	// because its runs saw less data; v3 must recover X by comparing at a
	// fixed reference size.
	e, _ := testEngineAndQuery()
	space := e.Space
	r := stats.NewRNG(11)
	mk := func(p, gb, rateMsPerGB float64) sparksim.Observation {
		return sparksim.Observation{
			Config:   space.With(space.Default(), sparksim.ShufflePartitions, p),
			DataSize: gb * 1e9,
			Time:     rateMsPerGB * gb,
		}
	}
	var w []sparksim.Observation
	// good: 1000 ms/GB, mostly big inputs but with mid-size runs so the
	// model can learn its size slope; bad: 2000 ms/GB, only small inputs.
	for _, gb := range []float64{1.0, 1.05, 1.8, 2.0, 2.2, 2.4} {
		w = append(w, mk(64, gb, 1000))
	}
	for _, gb := range []float64{0.4, 0.45, 0.5, 0.55} {
		w = append(w, mk(1800, gb, 2000))
	}
	for _, gb := range []float64{1.3, 1.2} {
		w = append(w, mk(400, gb, 1400))
	}
	cl := New(space, RandomSelector{RNG: r}, r)
	cl.Params.FindBest = FindBestRaw
	rawPick := cl.FindBest(w)
	cl.Params.FindBest = FindBestModel
	modelPick := cl.FindBest(w)
	rawP := space.Get(rawPick.Config, sparksim.ShufflePartitions)
	modelP := space.Get(modelPick.Config, sparksim.ShufflePartitions)
	if rawP != 1800 {
		t.Fatalf("expected raw pick to be fooled by small data, got P=%g", rawP)
	}
	if modelP == 1800 {
		t.Fatalf("model pick should not be fooled: P=%g", modelP)
	}
}

func TestFindGradientLinearSigns(t *testing.T) {
	// Time strictly increases with shuffle partitions in the window: the
	// descent direction for that dimension must be positive (decrease it).
	e, _ := testEngineAndQuery()
	space := e.Space
	var w []sparksim.Observation
	for i, p := range []float64{100, 200, 400, 800, 1200, 1600, 1900, 600, 300, 1000} {
		cfg := space.With(space.Default(), sparksim.ShufflePartitions, p)
		w = append(w, sparksim.Observation{Config: cfg, DataSize: 1e9, Time: 1000 + 3*p + float64(i%2)*10})
	}
	cl := New(space, RandomSelector{RNG: stats.NewRNG(1)}, stats.NewRNG(2))
	cl.Params.Gradient = GradientLinear
	best := cl.FindBest(w)
	delta := cl.FindGradient(w, best)
	idx := space.Index(sparksim.ShufflePartitions)
	if delta[idx] != 1 {
		t.Fatalf("gradient should point up (descend by decreasing): %v", delta)
	}
}

func TestFindGradientInsufficientWindow(t *testing.T) {
	e, _ := testEngineAndQuery()
	cl := New(e.Space, RandomSelector{RNG: stats.NewRNG(1)}, stats.NewRNG(2))
	w := []sparksim.Observation{{Config: e.Space.Default(), DataSize: 1, Time: 1}}
	delta := cl.FindGradient(w, w[0])
	for _, d := range delta {
		if d != 0 {
			t.Fatalf("small window should yield zero gradient: %v", delta)
		}
	}
}

func TestLevelSelectorPercentiles(t *testing.T) {
	e, q := testEngineAndQuery()
	oracle := func(c sparksim.Config) float64 { return e.TrueTime(q, c, 1) }
	r := stats.NewRNG(13)
	cands := e.Space.Neighborhood(e.Space.Default(), 0.3, 40, r)

	pick := func(level int) float64 {
		idx := LevelSelector{Level: level, True: oracle}.Select(cands, nil, 0)
		return oracle(cands[idx])
	}
	l1, l5, l9 := pick(1), pick(5), pick(9)
	if !(l1 <= l5 && l5 <= l9) {
		t.Fatalf("levels should order by true time: L1=%g L5=%g L9=%g", l1, l5, l9)
	}
}

func TestSurrogateSelectorFallsBackWithoutData(t *testing.T) {
	e, _ := testEngineAndQuery()
	sel := NewSurrogateSelector(e.Space, nil, nil, stats.NewRNG(1))
	cands := []sparksim.Config{e.Space.Default(), e.Space.Default()}
	if idx := sel.Select(cands, nil, 0); idx != 0 {
		t.Fatalf("empty history should select index 0, got %d", idx)
	}
	if idx := sel.Select(nil, nil, 0); idx != -1 {
		t.Fatal("empty candidate set should return -1")
	}
}

func TestSurrogateSelectorUsesWarmStart(t *testing.T) {
	// With warm-start data describing the response surface, the selector
	// must immediately avoid a known-terrible candidate.
	e, q := testEngineAndQuery()
	r := stats.NewRNG(17)
	var warm []tuners.BaselinePoint
	for i := 0; i < 120; i++ {
		cfg := e.Space.Random(r)
		warm = append(warm, tuners.BaselinePoint{
			Config:   cfg,
			DataSize: q.Plan.LeafInputBytes(),
			Time:     e.TrueTime(q, cfg, 1),
		})
	}
	sel := NewSurrogateSelector(e.Space, nil, warm, r)
	good, _ := e.OptimalConfig(q, 1, 10)
	bad := e.Space.With(e.Space.Default(), sparksim.ShufflePartitions, 8)
	bad = e.Space.With(bad, sparksim.MaxPartitionBytes, 1<<20)
	cands := []sparksim.Config{bad, good}
	if idx := sel.Select(cands, nil, q.Plan.LeafInputBytes()); idx != 1 {
		t.Fatalf("warm-started selector picked the bad candidate (idx %d)", idx)
	}
}

func TestGuardrailDisablesOnRegression(t *testing.T) {
	g := NewGuardrail()
	disabled := false
	for i := 0; i < 60 && !disabled; i++ {
		o := sparksim.Observation{DataSize: 1e9, Time: 1000 * math.Pow(1.1, float64(i))}
		disabled = g.Observe(i, o)
	}
	if !disabled {
		t.Fatal("steep sustained regression should disable autotuning")
	}
}

func TestGuardrailKeepsImprovingQuery(t *testing.T) {
	g := NewGuardrail()
	r := stats.NewRNG(19)
	for i := 0; i < 100; i++ {
		base := 2000 - 10*float64(i) // improving
		o := sparksim.Observation{DataSize: 1e9, Time: noise.Low.Inject(r, base)}
		if g.Observe(i, o) {
			t.Fatalf("guardrail fired on an improving query at iteration %d", i)
		}
	}
}

func TestGuardrailRespectsMinIterations(t *testing.T) {
	g := NewGuardrail()
	for i := 0; i < g.MinIterations; i++ {
		o := sparksim.Observation{DataSize: 1e9, Time: 1000 * math.Pow(1.3, float64(i))}
		if g.Observe(i, o) {
			t.Fatalf("guardrail fired before the minimum budget at iteration %d", i)
		}
	}
}

func TestDisabledCentroidRevertsToDefault(t *testing.T) {
	e, q := testEngineAndQuery()
	cl := New(e.Space, RandomSelector{RNG: stats.NewRNG(1)}, stats.NewRNG(2))
	// Force regression so the guardrail trips: replace observations with a
	// steeply growing series.
	for i := 0; i < 60 && !cl.Disabled(); i++ {
		cfg := cl.Propose(i, q.Plan.LeafInputBytes())
		cl.Observe(sparksim.Observation{Config: cfg, DataSize: 1e9, Time: 500 * math.Pow(1.12, float64(i))})
	}
	if !cl.Disabled() {
		t.Fatal("centroid learner should have been disabled")
	}
	cfg := cl.Propose(99, 0)
	def := e.Space.Default()
	for i := range cfg {
		if cfg[i] != def[i] {
			t.Fatal("disabled learner must propose the default configuration")
		}
	}
}

func TestHistoryWindow(t *testing.T) {
	var h tuners.History
	for i := 0; i < 10; i++ {
		h.Add(sparksim.Observation{Time: float64(i)})
	}
	if len(h.Window(3)) != 3 || h.Window(3)[0].Time != 7 {
		t.Fatal("window wrong")
	}
	if len(h.Window(0)) != 10 || len(h.Window(99)) != 10 {
		t.Fatal("window bounds wrong")
	}
	best, ok := h.BestObserved()
	if !ok || best.Time != 0 {
		t.Fatal("best observed wrong")
	}
}

// Property: the centroid always stays in the unit hypercube and proposals
// are always legal configurations, for any sequence of noisy observations.
func TestPropCentroidBounded(t *testing.T) {
	e, q := testEngineAndQuery()
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		cl := New(e.Space, RandomSelector{RNG: r.Split()}, r.Split())
		cl.Guardrail = nil
		nr := r.Split()
		for i := 0; i < 25; i++ {
			cfg := cl.Propose(i, q.Plan.LeafInputBytes())
			for j, p := range e.Space.Params {
				if cfg[j] < p.Min || cfg[j] > p.Max {
					return false
				}
			}
			o := e.Run(q, cfg, 0.5+nr.Float64()*2, nr, noise.High)
			o.Iteration = i
			cl.Observe(o)
			u := e.Space.Normalize(cl.Centroid())
			for _, v := range u {
				if v < -1e-9 || v > 1+1e-9 || math.IsNaN(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: FIND_GRADIENT only ever returns per-dimension directions in
// {−1, 0, +1}, for all modes and windows.
func TestPropGradientDirections(t *testing.T) {
	e, q := testEngineAndQuery()
	f := func(seed uint64, modeBit bool) bool {
		r := stats.NewRNG(seed)
		cl := New(e.Space, RandomSelector{RNG: r.Split()}, r.Split())
		if modeBit {
			cl.Params.Gradient = GradientLinear
		}
		n := 3 + r.Intn(20)
		w := make([]sparksim.Observation, n)
		for i := range w {
			cfg := e.Space.Random(r)
			w[i] = sparksim.Observation{
				Config: cfg, DataSize: 1e8 + r.Float64()*1e10,
				Time: e.TrueTime(q, cfg, 1) * (1 + r.Float64()),
			}
		}
		best := cl.FindBest(w)
		for _, d := range cl.FindGradient(w, best) {
			if d != -1 && d != 0 && d != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: snapshot/restore is lossless for the observable state.
func TestPropSnapshotRoundTrip(t *testing.T) {
	e, q := testEngineAndQuery()
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		cl := New(e.Space, RandomSelector{RNG: r.Split()}, r.Split())
		nr := r.Split()
		iters := 5 + r.Intn(20)
		for i := 0; i < iters; i++ {
			cfg := cl.Propose(i, q.Plan.LeafInputBytes())
			o := e.Run(q, cfg, 1, nr, noise.Low)
			o.Iteration = i
			cl.Observe(o)
		}
		blob, err := EncodeSnapshot(cl.Snapshot())
		if err != nil {
			return false
		}
		snap, err := DecodeSnapshot(blob)
		if err != nil {
			return false
		}
		back := New(e.Space, RandomSelector{RNG: stats.NewRNG(1)}, stats.NewRNG(2))
		back.Restore(snap)
		if back.Iterations() != cl.Iterations() || back.Disabled() != cl.Disabled() {
			return false
		}
		a, b := cl.Centroid(), back.Centroid()
		for j := range a {
			if a[j] != b[j] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
