package core

import (
	"math"

	"github.com/rockhopper-db/rockhopper/internal/ml"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
)

// Guardrail is the production safety mechanism of Section 4.3: a regression
// model over (iteration number, input cardinality) predicts the next
// iteration's execution time; if the prediction exceeds the previous
// observation by more than a threshold for several consecutive checks, the
// query is declared unsuitable for autotuning and reverts to the default
// configuration. Checks begin only after MinIterations, guaranteeing every
// query a minimum exploration budget (30 iterations in production).
type Guardrail struct {
	// MinIterations is the iteration at which monitoring starts.
	MinIterations int
	// Threshold is the tolerated relative excess of the predicted next time
	// over the last observed time.
	Threshold float64
	// Consecutive is the number of successive breaches required to disable
	// autotuning; production uses an "extremely conservative" setting, which
	// the low default mirrors by disabling eagerly on sustained regression.
	Consecutive int
	// Window caps how much history feeds the trend fit (0 = all).
	Window int

	iters []float64
	sizes []float64
	times []float64
	run   int
}

// NewGuardrail returns the production-default guardrail: monitor from
// iteration 30, tolerate 1% predicted per-iteration growth, disable after 3
// consecutive breaches. The threshold is small because the linear trend fit
// heavily dampens even severe regressions (a 10%-per-iteration exponential
// blow-up projects to only ≈3% fitted growth); it also mirrors the
// "extremely conservative" production policy under which most external
// query signatures eventually revert to defaults (Section 6.3).
func NewGuardrail() *Guardrail {
	return &Guardrail{MinIterations: 30, Threshold: 0.01, Consecutive: 3, Window: 40}
}

// Observe records iteration t's outcome and returns true when autotuning
// should be disabled.
func (g *Guardrail) Observe(t int, o sparksim.Observation) bool {
	g.iters = append(g.iters, float64(t))
	g.sizes = append(g.sizes, math.Log1p(o.DataSize))
	g.times = append(g.times, o.Time)
	if g.Window > 0 && len(g.iters) > g.Window {
		g.iters = g.iters[1:]
		g.sizes = g.sizes[1:]
		g.times = g.times[1:]
	}
	if t < g.MinIterations || len(g.iters) < 5 {
		return false
	}
	// Compare the model's prediction for the next iteration against its
	// fitted value at the previous one (both at the latest input size).
	// Using the fitted previous value instead of the raw observation
	// de-noises the comparison: a lucky fast run or an unlucky spike in the
	// last observation would otherwise flip the verdict.
	size := g.sizes[len(g.sizes)-1]
	next, ok := g.predictAt(float64(t+1), size)
	if !ok {
		return false
	}
	prev, ok := g.predictAt(float64(t), size)
	if !ok || prev <= 0 {
		return false
	}
	if next > prev*(1+g.Threshold) {
		g.run++
	} else {
		g.run = 0
	}
	return g.run >= g.Consecutive
}

// predictAt fits the (iteration, log size) → time regression and evaluates
// it at the given iteration.
func (g *Guardrail) predictAt(iter, logSize float64) (float64, bool) {
	x := make([][]float64, len(g.iters))
	y := make([]float64, len(g.iters))
	for i := range g.iters {
		x[i] = []float64{g.iters[i], g.sizes[i]}
		y[i] = g.times[i]
	}
	lin := ml.NewLinear(1e-6)
	if err := lin.Fit(x, y); err != nil {
		return 0, false
	}
	p := lin.Predict([]float64{iter, logSize})
	if math.IsNaN(p) || math.IsInf(p, 0) {
		return 0, false
	}
	return p, true
}

// BreachRun exposes the current consecutive-breach count (monitoring).
func (g *Guardrail) BreachRun() int { return g.run }
