package core

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"github.com/rockhopper-db/rockhopper/internal/sparksim"
)

// Snapshot is the serializable tuning state of one query signature: enough
// to resume Centroid Learning exactly where a previous process left off.
// The production system reconstructs this state from event files in the
// backend store (Figure 7); Snapshot/Restore provide the same durability
// for embedded deployments. Selectors are not part of the snapshot — they
// are stateless given the observation history and are re-supplied on
// restore.
type Snapshot struct {
	Params   Params
	Centroid []float64
	Start    sparksim.Config
	History  []sparksim.Observation
	Disabled bool
	// Guardrail trend state.
	GuardIters  []float64
	GuardSizes  []float64
	GuardTimes  []float64
	GuardBreach int
}

// Snapshot captures the learner's current state.
func (c *CentroidLearner) Snapshot() Snapshot {
	s := Snapshot{
		Params:   c.Params,
		Centroid: append([]float64(nil), c.centroid...),
		Disabled: c.disabled,
	}
	if c.Start != nil {
		s.Start = c.Start.Clone()
	}
	s.History = make([]sparksim.Observation, len(c.hist.Obs))
	for i, o := range c.hist.Obs {
		o.Config = o.Config.Clone()
		s.History[i] = o
	}
	if c.Guardrail != nil {
		s.GuardIters = append([]float64(nil), c.Guardrail.iters...)
		s.GuardSizes = append([]float64(nil), c.Guardrail.sizes...)
		s.GuardTimes = append([]float64(nil), c.Guardrail.times...)
		s.GuardBreach = c.Guardrail.run
	}
	return s
}

// Restore replaces the learner's state with the snapshot's. The learner's
// Selector and RNG are kept; guardrail trend state is restored only when
// the learner has a guardrail configured.
func (c *CentroidLearner) Restore(s Snapshot) {
	c.Params = s.Params
	c.centroid = append([]float64(nil), s.Centroid...)
	if len(c.centroid) == 0 {
		c.centroid = nil
	}
	if s.Start != nil {
		c.Start = s.Start.Clone()
	} else {
		c.Start = nil
	}
	c.disabled = s.Disabled
	c.hist.Obs = make([]sparksim.Observation, len(s.History))
	for i, o := range s.History {
		o.Config = o.Config.Clone()
		c.hist.Obs[i] = o
	}
	if c.Guardrail != nil {
		c.Guardrail.iters = append([]float64(nil), s.GuardIters...)
		c.Guardrail.sizes = append([]float64(nil), s.GuardSizes...)
		c.Guardrail.times = append([]float64(nil), s.GuardTimes...)
		c.Guardrail.run = s.GuardBreach
	}
}

// Iterations returns the number of observations recorded so far, i.e. the
// next iteration index to use after a restore.
func (c *CentroidLearner) Iterations() int { return c.hist.Len() }

// EncodeSnapshot serializes a snapshot with encoding/gob.
func EncodeSnapshot(s Snapshot) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		return nil, fmt.Errorf("core: encode snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot deserializes a snapshot.
func DecodeSnapshot(blob []byte) (Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("core: decode snapshot: %w", err)
	}
	return s, nil
}
