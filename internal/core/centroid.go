package core

import (
	"math"

	"github.com/rockhopper-db/rockhopper/internal/ml"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/tuners"
)

// FindBestMode selects the FIND_BEST refinement (Section 4.3). The function
// went through three production iterations, all preserved here for the
// ablation benchmarks.
type FindBestMode int

const (
	// FindBestRaw picks the window observation with the shortest raw
	// execution time (v1). Biased when data sizes vary.
	FindBestRaw FindBestMode = iota
	// FindBestNormalized divides time by data size (v2, Equation 3). Still
	// biased because time/size falls as size grows.
	FindBestNormalized
	// FindBestModel fits H(c, p) on the window and compares candidates at a
	// fixed reference size (v3, Equations 4–5). The production default.
	FindBestModel
)

func (m FindBestMode) String() string {
	switch m {
	case FindBestRaw:
		return "raw"
	case FindBestNormalized:
		return "normalized"
	default:
		return "model"
	}
}

// GradientMode selects the FIND_GRADIENT strategy.
type GradientMode int

const (
	// GradientLinear fits a linear trend surface over the window and
	// descends against the coefficient signs (the "learning the trend"
	// example of Figure 6).
	GradientLinear GradientMode = iota
	// GradientModelProbe reuses the non-linear window model H and probes
	// the 2^d sign combinations of Equation (6–7) around the best
	// configuration, avoiding linearity assumptions about data size — the
	// production default.
	GradientModelProbe
)

func (m GradientMode) String() string {
	if m == GradientModelProbe {
		return "model-probe"
	}
	return "linear"
}

// Params are the Centroid Learning hyperparameters of Algorithm 1.
type Params struct {
	// Alpha is the centroid update step: the overshoot applied along the
	// learned descent direction (momentum-style, Section 4.3).
	Alpha float64
	// Beta bounds the candidate neighbourhood around the centroid, the
	// regression-avoidance guard.
	Beta float64
	// N is the observation window Ω(t, N); the paper recommends 10–20 under
	// production noise.
	N int
	// Candidates is the number of neighbourhood candidates per iteration.
	Candidates int
	// FindBest and Gradient select the algorithm variants.
	FindBest FindBestMode
	Gradient GradientMode
}

// DefaultParams mirrors the production configuration.
func DefaultParams() Params {
	return Params{
		Alpha:      0.08,
		Beta:       0.08,
		N:          20,
		Candidates: 32,
		FindBest:   FindBestModel,
		Gradient:   GradientModelProbe,
	}
}

// CentroidLearner is Algorithm 1: a tuner that restricts exploration to a
// moving β-neighbourhood whose anchor (the centroid) is updated from
// statistical insight over the last N observations rather than from any
// single noisy run.
type CentroidLearner struct {
	Space    *sparksim.Space
	Params   Params
	Selector Selector
	// Guardrail monitors for sustained regression; nil disables monitoring.
	Guardrail *Guardrail
	// Start is the initial centroid e₀; nil means the space default.
	Start sparksim.Config
	// RNG drives candidate sampling.
	RNG *stats.RNG

	centroid []float64 // normalized
	hist     tuners.History
	lastSize float64
	disabled bool
}

// New returns a CentroidLearner with production defaults and the given
// selector.
func New(space *sparksim.Space, sel Selector, rng *stats.RNG) *CentroidLearner {
	return &CentroidLearner{
		Space:     space,
		Params:    DefaultParams(),
		Selector:  sel,
		Guardrail: NewGuardrail(),
		RNG:       rng,
	}
}

// Name implements tuners.Tuner.
func (c *CentroidLearner) Name() string { return "centroid" }

// Disabled reports whether the guardrail has reverted the query to the
// default configuration.
func (c *CentroidLearner) Disabled() bool { return c.disabled }

// Centroid exposes the current centroid as a configuration (monitoring).
func (c *CentroidLearner) Centroid() sparksim.Config {
	if c.centroid == nil {
		return c.startConfig()
	}
	return c.Space.Denormalize(c.centroid)
}

func (c *CentroidLearner) startConfig() sparksim.Config {
	if c.Start != nil {
		return c.Start.Clone()
	}
	return c.Space.Default()
}

// Propose implements tuners.Tuner: generate the candidate set in the
// β-neighbourhood of the centroid and let the surrogate pick (Steps 1–2 of
// Figure 5).
func (c *CentroidLearner) Propose(t int, dataSize float64) sparksim.Config {
	if c.disabled {
		return c.Space.Default()
	}
	if c.centroid == nil {
		c.centroid = c.Space.Normalize(c.startConfig())
	}
	if t == 0 && c.hist.Len() == 0 {
		// Iteration 0 executes the starting centroid itself: in production
		// this is the customer's current (default) configuration, so the
		// first tuned run can never regress against it by construction.
		return c.Space.Denormalize(c.centroid)
	}
	center := c.Space.Denormalize(c.centroid)
	cands := c.Space.Neighborhood(center, c.Params.Beta, c.Params.Candidates, c.RNG)
	cands = append(cands, center)
	idx := c.Selector.Select(cands, c.hist.Window(c.Params.N), dataSize)
	if idx < 0 || idx >= len(cands) {
		return center
	}
	return cands[idx]
}

// Observe implements tuners.Tuner: record the outcome, run the guardrail,
// and update the centroid (Steps 3–5 of Figure 5).
func (c *CentroidLearner) Observe(o sparksim.Observation) {
	c.hist.Add(o)
	c.lastSize = o.DataSize
	if c.Guardrail != nil && !c.disabled {
		if c.Guardrail.Observe(c.hist.Len()-1, o) {
			c.disabled = true
			return
		}
	}
	c.updateCentroid()
}

// updateCentroid computes e_{t+1} ← c* − α·Δ over the latest window.
// Movement toward the target is rate-limited to 2α per dimension per
// iteration: FIND_BEST's pick can relocate discontinuously between
// iterations when noise reorders the window, and without the trust region
// the centroid teleports with it, turning the update into a large-step
// random walk under heavy noise.
func (c *CentroidLearner) updateCentroid() {
	w := c.hist.Window(c.Params.N)
	if len(w) == 0 {
		return
	}
	if c.centroid == nil {
		// Observe before any Propose (replaying external history).
		c.centroid = c.Space.Normalize(c.startConfig())
	}
	best := c.FindBest(w)
	target := c.Space.Normalize(best.Config)
	delta := c.FindGradient(w, best)
	maxStep := 2 * c.Params.Alpha
	for j := range target {
		t := stats.Clamp(target[j]-c.Params.Alpha*delta[j], 0, 1)
		move := stats.Clamp(t-c.centroid[j], -maxStep, maxStep)
		c.centroid[j] = stats.Clamp(c.centroid[j]+move, 0, 1)
	}
}

// FindBest returns the best configuration in the window under the
// configured criterion (v1/v2/v3 of Section 4.3). Exported for the ablation
// benchmarks.
func (c *CentroidLearner) FindBest(w []sparksim.Observation) sparksim.Observation {
	switch c.Params.FindBest {
	case FindBestRaw:
		return argminObs(w, func(o sparksim.Observation) float64 { return o.Time })
	case FindBestNormalized:
		return argminObs(w, func(o sparksim.Observation) float64 {
			if o.DataSize <= 0 {
				return o.Time
			}
			return o.Time / o.DataSize
		})
	default:
		model := c.fitWindowModel(w)
		if model == nil {
			// Too little data for a stable fit: fall back to v2.
			return argminObs(w, func(o sparksim.Observation) float64 {
				if o.DataSize <= 0 {
					return o.Time
				}
				return o.Time / o.DataSize
			})
		}
		pRef := w[len(w)-1].DataSize
		return argminObs(w, func(o sparksim.Observation) float64 {
			return model.Predict(tuners.ConfigFeatures(c.Space, nil, o.Config, pRef))
		})
	}
}

// FindGradient learns the per-dimension descent direction Δ ∈ {−1, 0, +1}^d
// from the window (Section 4.3). Exported for the ablation benchmarks.
func (c *CentroidLearner) FindGradient(w []sparksim.Observation, best sparksim.Observation) []float64 {
	dim := c.Space.Dim()
	delta := make([]float64, dim)
	if len(w) < dim+2 {
		return delta // not enough observations to resolve a direction
	}
	switch c.Params.Gradient {
	case GradientLinear:
		lin := ml.NewLinear(1e-4)
		x := make([][]float64, len(w))
		y := make([]float64, len(w))
		for i, o := range w {
			x[i] = tuners.ConfigFeatures(c.Space, nil, o.Config, o.DataSize)
			y[i] = math.Log1p(o.Time)
		}
		if err := lin.Fit(x, y); err != nil {
			return delta
		}
		for j := 0; j < dim; j++ {
			s := lin.RawSlope(j)
			switch {
			case s > 0:
				delta[j] = 1 // time rises with this config: descend by decreasing
			case s < 0:
				delta[j] = -1
			}
		}
		return delta

	default: // GradientModelProbe, Equations (6)–(7)
		model := c.fitWindowModel(w)
		if model == nil {
			return delta
		}
		u := c.Space.Normalize(best.Config)
		pRef := w[len(w)-1].DataSize
		bestVal := math.Inf(1)
		var bestDelta []float64
		// Enumerate δ ∈ {−1, +1}^d (Equation 7): probe H at u − α·δ and keep
		// the probe with the lowest predicted time. There is deliberately no
		// "stay" option — the centroid always overshoots in the winning
		// direction, the momentum mechanism that escapes local minima.
		combos := 1 << dim
		probe := make([]float64, dim)
		for mask := 0; mask < combos; mask++ {
			d := make([]float64, dim)
			for j := 0; j < dim; j++ {
				if mask&(1<<j) != 0 {
					d[j] = 1
				} else {
					d[j] = -1
				}
			}
			for j := 0; j < dim; j++ {
				probe[j] = stats.Clamp(u[j]-c.Params.Alpha*d[j], 0, 1)
			}
			cfg := c.Space.Denormalize(probe)
			v := model.Predict(tuners.ConfigFeatures(c.Space, nil, cfg, pRef))
			if v < bestVal {
				bestVal = v
				bestDelta = append([]float64(nil), d...)
			}
		}
		if bestDelta == nil {
			return delta
		}
		return bestDelta
	}
}

// fitWindowModel fits the non-linear window model H(c, p) of Equation (4).
func (c *CentroidLearner) fitWindowModel(w []sparksim.Observation) ml.Regressor {
	if len(w) < 4 {
		return nil
	}
	x := make([][]float64, len(w))
	y := make([]float64, len(w))
	for i, o := range w {
		x[i] = tuners.ConfigFeatures(c.Space, nil, o.Config, o.DataSize)
		y[i] = math.Log1p(o.Time)
	}
	kr := ml.NewKernelRidge()
	kr.Alpha = 0.3
	if err := kr.Fit(x, y); err != nil {
		return nil
	}
	return kr
}

func argminObs(w []sparksim.Observation, score func(sparksim.Observation) float64) sparksim.Observation {
	best := w[0]
	bestScore := score(best)
	for _, o := range w[1:] {
		if s := score(o); s < bestScore {
			best, bestScore = o, s
		}
	}
	return best
}

var _ tuners.Tuner = (*CentroidLearner)(nil)
