// Package core implements Rockhopper's primary contribution: the Centroid
// Learning (CL) algorithm of Section 4.3 (Algorithm 1), together with its
// FIND_BEST and FIND_GRADIENT refinements, the candidate selectors backed by
// surrogate models, and the production guardrail that disables tuning on
// sustained regression.
package core

import (
	"math"
	"sort"

	"github.com/rockhopper-db/rockhopper/internal/ml"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/tuners"
)

// Selector picks the most promising candidate from the β-neighbourhood
// (Step 2 of Figure 5): given the candidate set, the recent observation
// window, and the expected input size of the upcoming run, it returns the
// index of the candidate to execute.
type Selector interface {
	Select(cands []sparksim.Config, window []sparksim.Observation, dataSize float64) int
}

// SurrogateSelector ranks candidates with a surrogate trained on offline
// warm-start data plus the query's own observations — the production
// configuration of Figure 5: the baseline model provides iteration-0
// guidance (Section 4.2) and fine-tunes as query-specific data accumulates.
//
// By default the surrogate is a Gaussian process and candidates are scored
// with the Expected Improvement acquisition function ("the candidate with
// the highest acquisition function score is selected"). The acquisition's
// exploration term is what keeps the β-neighbourhood from collapsing onto a
// single repeatedly-executed point. Setting NewModel switches to pure
// predicted-mean selection with any Regressor (e.g. the kernel-ridge "SVR"
// surrogate), which is how the Figure 10 variant operates.
type SurrogateSelector struct {
	Space *sparksim.Space
	// Context is the query's workload embedding; may be nil.
	Context []float64
	// Warm holds offline benchmark observations (shared feature layout with
	// tuners.BO).
	Warm []tuners.BaselinePoint
	// NewModel, when non-nil, constructs a fresh surrogate per fit and
	// candidates are ranked by predicted mean instead of EI.
	NewModel func() ml.Regressor
	// Xi is the EI exploration margin (relative to the log-time scale).
	Xi float64
	// MaxRows caps the design matrix (inference-latency budget).
	MaxRows int
	// RNG subsamples warm-start rows when the cap binds.
	RNG *stats.RNG
}

// NewSurrogateSelector returns a GP+EI selector, the production default.
func NewSurrogateSelector(space *sparksim.Space, context []float64, warm []tuners.BaselinePoint, rng *stats.RNG) *SurrogateSelector {
	return &SurrogateSelector{Space: space, Context: context, Warm: warm, Xi: 0.01, MaxRows: 250, RNG: rng}
}

// Select implements Selector. With insufficient data it falls back to the
// candidate nearest the window's best observation (or index 0 when there is
// no history at all).
func (s *SurrogateSelector) Select(cands []sparksim.Config, window []sparksim.Observation, dataSize float64) int {
	if len(cands) == 0 {
		return -1
	}
	x, y := s.design(window)
	if len(x) < 3 {
		return s.fallback(cands, window)
	}
	if s.NewModel != nil {
		model := s.NewModel()
		if err := model.Fit(x, y); err != nil {
			return s.fallback(cands, window)
		}
		bestIdx, bestPred := 0, math.Inf(1)
		for i, c := range cands {
			p := model.Predict(tuners.ConfigFeatures(s.Space, s.Context, c, dataSize))
			if !math.IsNaN(p) && p < bestPred {
				bestIdx, bestPred = i, p
			}
		}
		return bestIdx
	}
	gp := ml.NewGP()
	gp.Kernel.LengthScale = 0.6
	gp.Noise = 0.15
	if err := gp.Fit(x, y); err != nil {
		return s.fallback(cands, window)
	}
	best := stats.Min(y)
	bestIdx, bestEI := 0, math.Inf(-1)
	for i, c := range cands {
		ei := gp.ExpectedImprovement(tuners.ConfigFeatures(s.Space, s.Context, c, dataSize), best, s.Xi)
		if ei > bestEI {
			bestIdx, bestEI = i, ei
		}
	}
	return bestIdx
}

// design assembles the (capped) training set: warm-start rows plus the
// observation window, responses on the log1p scale.
func (s *SurrogateSelector) design(window []sparksim.Observation) ([][]float64, []float64) {
	maxRows := s.MaxRows
	if maxRows <= 0 {
		maxRows = 250
	}
	warm := s.Warm
	if len(warm)+len(window) > maxRows && len(window) < maxRows {
		keep := maxRows - len(window)
		if s.RNG != nil {
			idx := s.RNG.Perm(len(warm))[:keep]
			sub := make([]tuners.BaselinePoint, 0, keep)
			for _, i := range idx {
				sub = append(sub, warm[i])
			}
			warm = sub
		} else {
			warm = warm[:keep]
		}
	}
	x := make([][]float64, 0, len(warm)+len(window))
	y := make([]float64, 0, len(warm)+len(window))
	for _, w := range warm {
		ctx := w.Context
		if s.Context == nil {
			ctx = nil
		}
		x = append(x, tuners.ConfigFeatures(s.Space, ctx, w.Config, w.DataSize))
		y = append(y, math.Log1p(w.Time))
	}
	for _, o := range window {
		x = append(x, tuners.ConfigFeatures(s.Space, s.Context, o.Config, o.DataSize))
		y = append(y, math.Log1p(o.Time))
	}
	return x, y
}

func (s *SurrogateSelector) fallback(cands []sparksim.Config, window []sparksim.Observation) int {
	if len(window) == 0 {
		return 0
	}
	best := window[0]
	for _, o := range window[1:] {
		if o.Time < best.Time {
			best = o
		}
	}
	target := s.Space.Normalize(best.Config)
	bestIdx, bestDist := 0, math.Inf(1)
	for i, c := range cands {
		u := s.Space.Normalize(c)
		var d float64
		for j := range u {
			dd := u[j] - target[j]
			d += dd * dd
		}
		if d < bestDist {
			bestIdx, bestDist = i, d
		}
	}
	return bestIdx
}

// TrueTimeFunc is an oracle returning the noiseless performance of a
// configuration at the current data size. It exists only for the
// pseudo-surrogate experiments of Section 6.1; production selectors never
// see the truth.
type TrueTimeFunc func(c sparksim.Config) float64

// LevelSelector is the pseudo-surrogate of Figure 9: a "Level X" model
// selects the candidate ranked at the 10·X-th percentile of *true*
// performance within the candidate set, simulating surrogates of varying
// accuracy (Level 1 near-perfect, Level 9 near-worst).
type LevelSelector struct {
	Level int
	True  TrueTimeFunc
}

// Select implements Selector.
func (l LevelSelector) Select(cands []sparksim.Config, _ []sparksim.Observation, _ float64) int {
	if len(cands) == 0 {
		return -1
	}
	type scored struct {
		idx int
		t   float64
	}
	xs := make([]scored, len(cands))
	for i, c := range cands {
		xs[i] = scored{idx: i, t: l.True(c)}
	}
	sort.Slice(xs, func(a, b int) bool { return xs[a].t < xs[b].t })
	pos := int(math.Round(float64(l.Level) / 10 * float64(len(xs)-1)))
	pos = int(stats.Clamp(float64(pos), 0, float64(len(xs)-1)))
	return xs[pos].idx
}

// RandomSelector picks a uniformly random candidate; the ablation floor.
type RandomSelector struct {
	RNG *stats.RNG
}

// Select implements Selector.
func (r RandomSelector) Select(cands []sparksim.Config, _ []sparksim.Observation, _ float64) int {
	if len(cands) == 0 {
		return -1
	}
	return r.RNG.Intn(len(cands))
}

var (
	_ Selector = (*SurrogateSelector)(nil)
	_ Selector = LevelSelector{}
	_ Selector = RandomSelector{}
)
