// Package fleet shards the Rockhopper backend across N nodes and keeps
// every shard survivable. Three layers compose:
//
//   - Ring: a deterministic consistent-hash ring with virtual nodes.
//     Signature ownership is a pure function of (node set, seed), so every
//     node and every client computes identical placement with no
//     coordination, and a membership change moves only ~K/N of the keys.
//
//   - Topology: the ring plus liveness. A dead node's keys are NOT
//     re-hashed — they route to the node's first live follower in the
//     cyclic node-ID order, because that follower holds the replicated
//     data. Only a permanent Remove rebalances.
//
//   - Replicator/Node (replicator.go, node.go): WAL log-shipping from each
//     shard owner to its followers, gap detection with snapshot catch-up,
//     and replay-on-promote failover.
//
// The ring hash is a seeded FNV-1a: stable across processes, runs, and
// architectures — placement determinism is load-bearing (clients route by
// it) and property-tested in ring_test.go.
package fleet

import (
	"fmt"
	"sort"
)

// DefaultVnodes is the virtual-node count per physical node. 128 points
// per node keeps the max/mean load ratio within ~1.3 at fleet sizes the
// backend targets while membership changes stay cheap to recompute.
const DefaultVnodes = 128

// ringPoint is one virtual node on the circle.
type ringPoint struct {
	hash uint64
	node string
}

// Ring is a deterministic consistent-hash ring. The zero value is not
// usable; construct with NewRing. Ring itself is not safe for concurrent
// mutation — Topology provides the synchronized view.
type Ring struct {
	vnodes int
	seed   uint64
	points []ringPoint // sorted by (hash, node)
	nodes  []string    // sorted member IDs
}

// NewRing returns an empty ring placing vnodes virtual nodes per member
// (DefaultVnodes when vnodes <= 0) with placement derived from seed.
func NewRing(vnodes int, seed uint64) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes, seed: seed}
}

// fnvOffset and fnvPrime are the FNV-1a 64-bit parameters.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hashBytes folds b into h with FNV-1a.
func hashBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime
	}
	return h
}

// mix64 is a 64-bit avalanche finalizer (the MurmurHash3 fmix64 constants).
// Raw FNV-1a over short strings diffuses the trailing bytes into the high
// bits too slowly, which clumps ring points and skews placement; the
// finalizer spreads every input bit across the whole word.
func mix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// keyHash hashes a routing key under the ring's seed.
func (r *Ring) keyHash(key string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < 8; i++ {
		h ^= (r.seed >> (8 * i)) & 0xFF
		h *= fnvPrime
	}
	return mix64(hashBytes(h, []byte(key)))
}

// Add inserts a node's virtual points; adding a member twice is a no-op.
func (r *Ring) Add(node string) {
	i := sort.SearchStrings(r.nodes, node)
	if i < len(r.nodes) && r.nodes[i] == node {
		return
	}
	r.nodes = append(r.nodes, "")
	copy(r.nodes[i+1:], r.nodes[i:])
	r.nodes[i] = node
	for v := 0; v < r.vnodes; v++ {
		h := mix64(hashBytes(r.keyHash(node), []byte(fmt.Sprintf("#%d", v))))
		r.points = append(r.points, ringPoint{hash: h, node: node})
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
}

// Remove deletes a node's virtual points — the permanent-rebalance path.
// Transient failures go through Topology.MarkDead instead, which preserves
// placement and routes to the replica holder.
func (r *Ring) Remove(node string) {
	i := sort.SearchStrings(r.nodes, node)
	if i >= len(r.nodes) || r.nodes[i] != node {
		return
	}
	r.nodes = append(r.nodes[:i], r.nodes[i+1:]...)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Nodes returns the member IDs, sorted.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Lookup returns the node owning key: the first virtual point clockwise of
// the key's hash. It returns "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := r.keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// LookupN returns up to n distinct nodes clockwise of key — the owner
// first. It is the placement primitive for replica sets.
func (r *Ring) LookupN(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	h := r.keyHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}
