package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/backend"
	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// gatherSpans reads one trace's fragments from every node's /api/trace —
// exactly what rockmon -trace does.
func gatherSpans(t *testing.T, f *testFleet, traceID string) []telemetry.Span {
	t.Helper()
	var all []telemetry.Span
	for id, base := range f.peers {
		resp, err := http.Get(base + "/api/trace?trace=" + traceID)
		if err != nil {
			t.Fatalf("gather from %s: %v", id, err)
		}
		var spans []telemetry.Span
		err = json.NewDecoder(resp.Body).Decode(&spans)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("gather from %s: %v", id, err)
		}
		all = append(all, spans...)
	}
	return all
}

// TestFleetTracedIngestSingleConnectedTree is the cross-node causal drill:
// one traced, replicated batch ingest must assemble into a single connected
// tree spanning all three nodes, rooted at the client send, with the WAL
// append + fsync, the per-follower replication waits and ships, the
// follower-side applies, and the retrain all present as child spans
// carrying durations. Orphans are a propagation bug and fail the drill.
func TestFleetTracedIngestSingleConnectedTree(t *testing.T) {
	// Real fsyncs: NoSync elides the wal_fsync spans the drill asserts on.
	f := newTestFleet(t, []string{"a", "b", "c"}, 3, func(id string, opts *NodeOptions) {
		opts.NoSync = false
	})
	sig := sigOwnedBy(t, f, "a", nil)

	// One replicated batch ingest, traced from outside the fleet (the
	// client-send root is unrecorded, so assembly synthesizes it).
	sc := telemetry.SpanContext{TraceID: 0x5ca1ab1e, SpanID: 0xd011}
	var buf bytes.Buffer
	space := sparksim.QuerySpace()
	traces := make([]flighting.Trace, 8)
	for i := range traces {
		traces[i] = flighting.Trace{QueryID: sig, Config: space.Default(), DataSize: 1, TimeMs: 100 + float64(i)}
	}
	if err := flighting.WriteTraces(&buf, traces); err != nil {
		t.Fatal(err)
	}
	n := f.nodes["a"]
	tok := n.Store().Sign("events/", store.PermWrite, n.Backend().TokenTTL)
	url := fmt.Sprintf("%s/api/events?user=u&signature=%s&job_id=j1", f.peers["a"], sig)
	req, err := http.NewRequest(http.MethodPost, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(backend.SASTokenHeader, tok)
	req.Header.Set(telemetry.TraceHeader, sc.String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("traced ingest status = %d", resp.StatusCode)
	}
	n.Backend().Flush() // drain the retrain the ingest queued

	// The follower-side ship spans finish asynchronously just after the ack
	// releases the request; poll the gather briefly rather than sleeping.
	required := []string{
		"events", "wal_append", "wal_fsync", "retrain",
		"replication_wait:", "replicate:", "fleet_replicate", "replica_apply",
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		spans := gatherSpans(t, f, sc.TraceHex())
		tree := telemetry.AssembleTrace(sc.TraceHex(), spans)
		missing := missingSpans(tree, required)
		if tree.Connected() && len(missing) == 0 {
			verifyTree(t, tree)
			return
		}
		if time.Now().After(deadline) {
			var render strings.Builder
			telemetry.RenderTree(&render, tree)
			t.Fatalf("drill did not converge: connected=%v orphans=%d missing=%v\n%s",
				tree.Connected(), len(tree.Orphans), missing, render.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// missingSpans lists required span names (exact, or prefix for per-peer
// names ending in ':') absent from the tree.
func missingSpans(tree telemetry.TraceTree, required []string) []string {
	var missing []string
	spans := tree.Spans()
	for _, want := range required {
		found := false
		for _, sp := range spans {
			if sp.Name == want || (strings.HasSuffix(want, ":") && strings.HasPrefix(sp.Name, want)) {
				found = true
				break
			}
		}
		if !found {
			missing = append(missing, want)
		}
	}
	return missing
}

// verifyTree asserts the structural acceptance criteria on a converged
// drill tree.
func verifyTree(t *testing.T, tree telemetry.TraceTree) {
	t.Helper()
	if !tree.Synthesized {
		t.Error("client send was outside the fleet: the root must be synthesized")
	}
	if got := tree.Roots[0].Span.Name; got != "client_send" {
		t.Errorf("root = %q, want client_send", got)
	}
	nodes := make(map[string]bool)
	followerApplies := 0
	for _, sp := range tree.Spans() {
		if sp.Node != "" {
			nodes[sp.Node] = true
		}
		if sp.Status == "remote" {
			continue // the synthesized root has no recorded timing
		}
		if sp.DurationMS < 0 {
			t.Errorf("span %s has negative duration %v", sp.Name, sp.DurationMS)
		}
		if sp.Status == "" {
			t.Errorf("span %s finished without a status", sp.Name)
		}
		if sp.Name == "replica_apply" {
			followerApplies++
		}
	}
	if len(nodes) != 3 {
		t.Errorf("tree spans %d nodes %v, want all 3", len(nodes), nodes)
	}
	if followerApplies != 2 {
		t.Errorf("tree has %d replica_apply spans, want one per follower (2)", followerApplies)
	}
}
