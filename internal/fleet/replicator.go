// Replicator: WAL log-shipping from a shard owner to its follower peers.
// It taps the durable store's OnAppend hook (copying each frame while the
// store lock is held, shipping outside it), buffers frames per peer, and
// drives one shipping goroutine per peer. Followers enforce the store's
// strict sequence continuity; when a peer reports a gap — it restarted, or
// its buffer here overflowed and frames were dropped — the replicator
// falls back to full snapshot catch-up and then resumes frame shipping.
//
// WaitReplicated is the synchronous-ack primitive: the backend commits
// locally, then blocks the request until every peer has acknowledged the
// commit's sequence number, and only then returns 202. That ordering is
// what makes "zero acknowledged-event loss on owner death" hold by
// construction — an acknowledged event is on every follower's disk.
package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/resilience"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// ErrPeerGap is returned by a Peer whose follower store needs snapshot
// catch-up before it can accept more frames.
var ErrPeerGap = errors.New("fleet: follower reports a sequence gap")

// ErrReplicatorStopped is returned by WaitReplicated after Stop: the ack
// can no longer be guaranteed, so the caller must fail the request.
var ErrReplicatorStopped = errors.New("fleet: replicator stopped")

// Peer is the transport to one follower replica.
type Peer interface {
	// Replicate ships verbatim WAL frames and returns the follower's
	// post-apply sequence number. A gap must surface as ErrPeerGap.
	Replicate(ctx context.Context, frames []byte) (uint64, error)
	// InstallSnapshot ships a full snapshot image and returns the sequence
	// number the follower now covers.
	InstallSnapshot(ctx context.Context, image []byte) (uint64, error)
}

// Source is the replicator's read-only view of the owner store.
type Source interface {
	// SnapshotImage renders the current state for peer catch-up.
	SnapshotImage() ([]byte, uint64, error)
}

// ReplicatorOptions parameterizes NewReplicator. The zero value is usable:
// real clock, no metrics, DefaultMaxBuffer, DefaultRetryDelay.
type ReplicatorOptions struct {
	// Clock drives retry backoff; nil means the wall clock.
	Clock resilience.Clock
	// Metrics receives the replication instruments; nil discards them.
	Metrics *telemetry.Registry
	// MaxBuffer caps the bytes buffered per peer; past it the buffer is
	// dropped and the peer is queued for snapshot catch-up. 0 means
	// DefaultMaxBuffer.
	MaxBuffer int
	// RetryDelay is the pause after a failed ship before retrying; 0 means
	// DefaultRetryDelay.
	RetryDelay time.Duration
	// Tracer mints the replicate/replication_wait spans of the shipping
	// path; nil records nothing. SetTracer installs one later when the
	// tracer is built after the replicator (the node does this).
	Tracer *telemetry.Tracer
}

// Replication tuning defaults.
const (
	DefaultMaxBuffer  = 4 << 20
	DefaultRetryDelay = 50 * time.Millisecond
)

// peerState is one follower's shipping pipeline.
type peerState struct {
	id   string
	peer Peer

	buf []byte // pending verbatim frames (guarded by Replicator.mu)
	// sc is the trace identity of the most recent traced request whose
	// frame is in buf (guarded by Replicator.mu). The next ship parents its
	// replicate span under it, so cross-node log shipping stays inside the
	// request's causal tree; untraced frames leave it zero.
	sc       telemetry.SpanContext
	needSnap bool   // frame continuity lost; snapshot before more frames
	snapGen  uint64 // bumped on every continuity loss; guards stale snapshots
	dropped  bool   // peer removed from the ack set; ship goroutine exits
	acked    uint64 // follower's last acknowledged sequence number

	lag      telemetry.Gauge
	shipped  telemetry.Counter
	catchups telemetry.Counter
}

// Replicator ships WAL frames from one owner store to its follower peers.
type Replicator struct {
	src        Source
	clock      resilience.Clock
	maxBuffer  int
	retryDelay time.Duration

	waitSeconds telemetry.Histogram
	tracer      *telemetry.Tracer // guarded by mu; read once per ship pass
	// metricsFor binds one peer's instruments; set once by NewReplicator,
	// closing over the options registry.
	metricsFor func(id string) (telemetry.Gauge, telemetry.Counter, telemetry.Counter)

	mu      sync.Mutex
	cond    *sync.Cond
	peers   []*peerState
	lastSeq uint64 // owner's last observed sequence number
	stopped bool
	started bool
	wg      sync.WaitGroup
}

// NewReplicator returns a replicator for the given owner store. Peers are
// added with AddPeer, then Start launches the shipping pipelines.
func NewReplicator(src Source, opts ReplicatorOptions) *Replicator {
	r := &Replicator{
		src:        src,
		clock:      opts.Clock,
		maxBuffer:  opts.MaxBuffer,
		retryDelay: opts.RetryDelay,
		tracer:     opts.Tracer,
		waitSeconds: opts.Metrics.Histogram("rockhopper_fleet_replication_wait_seconds",
			"Time requests spend blocked on follower acknowledgement.", nil).With(),
	}
	if r.clock == nil {
		r.clock = resilience.RealClock{}
	}
	if r.maxBuffer <= 0 {
		r.maxBuffer = DefaultMaxBuffer
	}
	if r.retryDelay <= 0 {
		r.retryDelay = DefaultRetryDelay
	}
	r.cond = sync.NewCond(&r.mu)
	r.metricsFor = func(id string) (telemetry.Gauge, telemetry.Counter, telemetry.Counter) {
		lagVec := opts.Metrics.Gauge("rockhopper_fleet_replication_lag_records",
			"Owner-to-follower WAL sequence lag, in records.", "peer")
		shippedVec := opts.Metrics.Counter("rockhopper_fleet_replicated_records_total",
			"WAL records acknowledged by each follower.", "peer")
		catchupsVec := opts.Metrics.Counter("rockhopper_fleet_snapshot_catchups_total",
			"Full snapshot catch-ups shipped to each follower.", "peer")
		//rocklint:allow metriccardinality -- peer IDs come from the static fleet config; cardinality equals fleet size
		lag := lagVec.With(id)
		//rocklint:allow metriccardinality -- peer IDs come from the static fleet config; cardinality equals fleet size
		shipped := shippedVec.With(id)
		//rocklint:allow metriccardinality -- peer IDs come from the static fleet config; cardinality equals fleet size
		catchups := catchupsVec.With(id)
		return lag, shipped, catchups
	}
	return r
}

// SetTracer installs the span tracer for the shipping path — the node
// wires the backend's tracer in after both exist. Call before Start.
func (r *Replicator) SetTracer(tr *telemetry.Tracer) {
	r.mu.Lock()
	r.tracer = tr
	r.mu.Unlock()
}

// AddPeer registers a follower before Start. New frames begin buffering
// for the peer immediately; its first ship is a snapshot catch-up, which
// establishes the sequence base the buffered frames extend.
func (r *Replicator) AddPeer(id string, peer Peer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	lag, shipped, catchups := r.metricsFor(id)
	r.peers = append(r.peers, &peerState{
		id: id, peer: peer, needSnap: true,
		lag: lag, shipped: shipped, catchups: catchups,
	})
}

// DropPeer removes a follower from the ack set and stops shipping to it —
// called when the follower is declared dead, so the surviving owner's
// ingest stops waiting for acknowledgements that can never arrive.
// Dropping an unknown peer is a no-op.
func (r *Replicator) DropPeer(id string) {
	r.mu.Lock()
	kept := r.peers[:0]
	for _, ps := range r.peers {
		if ps.id == id {
			ps.dropped = true
			ps.buf = nil
			ps.lag.Set(0)
			continue
		}
		kept = append(kept, ps)
	}
	r.peers = kept
	r.mu.Unlock()
	r.cond.Broadcast()
}

// Start launches one shipping goroutine per peer. The goroutines exit when
// ctx is cancelled or Stop is called.
func (r *Replicator) Start(ctx context.Context) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.started || r.stopped {
		return
	}
	r.started = true
	// cond.Wait cannot watch a context, so cancellation wakes the waiters
	// through a broadcast.
	stop := context.AfterFunc(ctx, func() {
		r.mu.Lock()
		r.stopped = true
		r.mu.Unlock()
		r.cond.Broadcast()
	})
	for _, ps := range r.peers {
		r.wg.Add(1)
		go func(ps *peerState) {
			defer r.wg.Done()
			r.ship(ctx, ps)
		}(ps)
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		<-ctx.Done()
		stop()
	}()
}

// Stop halts shipping and wakes every waiter with ErrReplicatorStopped.
// It does not wait for in-flight peer calls; cancel the Start context to
// bound those.
func (r *Replicator) Stop() {
	r.mu.Lock()
	r.stopped = true
	r.mu.Unlock()
	r.cond.Broadcast()
}

// Observe is the store's OnAppend tap: it is called under the store lock,
// so it only copies the frame into each peer buffer and signals the
// shipping goroutines. A buffer past MaxBuffer is dropped whole and the
// peer falls back to snapshot catch-up. sc is the appending request's trace
// identity (zero for untraced work); the latest traced one rides with the
// buffer so the ship carries causal parentage across the fleet.
func (r *Replicator) Observe(seq uint64, frame []byte, sc telemetry.SpanContext) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lastSeq = seq
	for _, ps := range r.peers {
		if len(ps.buf)+len(frame) > r.maxBuffer {
			ps.buf = nil
			ps.needSnap = true
			ps.snapGen++
			ps.sc = telemetry.SpanContext{}
			continue
		}
		ps.buf = append(ps.buf, frame...)
		if sc.Valid() {
			ps.sc = sc
		}
	}
	r.cond.Broadcast()
}

// peerWait pairs one straggling follower with the replication_wait span
// timing how long a request blocked on its acknowledgement.
type peerWait struct {
	ps *peerState
	sp *telemetry.ActiveSpan
}

// WaitReplicated blocks until every peer has acknowledged seq (or ctx
// expires / the replicator stops). With no peers it returns immediately:
// a single-node fleet degenerates to local durability. A traced ctx gets
// one replication_wait:<peer> child span per follower still short of seq,
// finished the moment that follower's ack covers it — the tree then shows
// which peer the request actually waited on, and for how long.
func (r *Replicator) WaitReplicated(ctx context.Context, seq uint64) error {
	start := r.clock.Now()
	defer func() { r.waitSeconds.Observe(r.clock.Now().Sub(start).Seconds()) }()
	unregister := context.AfterFunc(ctx, r.cond.Broadcast)
	defer unregister()
	r.mu.Lock()
	defer r.mu.Unlock()
	var waits []peerWait
	if sc := telemetry.SpanFrom(ctx); sc.Valid() && r.tracer != nil {
		for _, ps := range r.peers {
			if ps.acked < seq {
				sp := r.tracer.StartRemote(sc, "replication_wait:"+ps.id, "fleet")
				sp.Annotate("seq %d", seq)
				waits = append(waits, peerWait{ps: ps, sp: sp})
			}
		}
	}
	// Finish is idempotent, so settling the stragglers on every exit path
	// (and per-peer as acks land) records each span exactly once.
	settle := func(status string) {
		for _, w := range waits {
			w.sp.Finish(status)
		}
	}
	for {
		for _, w := range waits {
			if w.ps.dropped {
				w.sp.Finish("dropped")
			} else if w.ps.acked >= seq {
				w.sp.Finish("ok")
			}
		}
		if r.minAckedLocked() >= seq {
			settle("ok")
			return nil
		}
		if r.stopped {
			settle("stopped")
			return ErrReplicatorStopped
		}
		if err := ctx.Err(); err != nil {
			settle("timeout")
			return fmt.Errorf("fleet: replication wait for seq %d: %w", seq, err)
		}
		r.cond.Wait()
	}
}

// minAckedLocked returns the lowest peer ack; with no peers every sequence
// counts as replicated.
func (r *Replicator) minAckedLocked() uint64 {
	min := ^uint64(0)
	for _, ps := range r.peers {
		if ps.acked < min {
			min = ps.acked
		}
	}
	return min
}

// Lag returns each peer's current sequence lag in records.
func (r *Replicator) Lag() map[string]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.peers))
	for _, ps := range r.peers {
		out[ps.id] = r.lastSeq - min64(ps.acked, r.lastSeq)
	}
	return out
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// ship is one peer's pipeline: wait for work, ship it, record the ack.
func (r *Replicator) ship(ctx context.Context, ps *peerState) {
	for {
		r.mu.Lock()
		for !r.stopped && !ps.dropped && ctx.Err() == nil && len(ps.buf) == 0 && !ps.needSnap {
			r.cond.Wait()
		}
		if r.stopped || ps.dropped || ctx.Err() != nil {
			r.mu.Unlock()
			return
		}
		needSnap := ps.needSnap
		tracer := r.tracer
		var buf []byte
		var sc telemetry.SpanContext
		if !needSnap {
			buf, ps.buf = ps.buf, nil
			sc, ps.sc = ps.sc, telemetry.SpanContext{}
		}
		r.mu.Unlock()

		if needSnap {
			r.shipSnapshot(ctx, ps)
			continue
		}
		// The replicate span parents under the traced request that appended
		// into this batch; its context rides the ship call's trace header so
		// the follower's apply work joins the same tree.
		shipCtx := ctx
		sp := tracer.StartRemote(sc, "replicate:"+ps.id, "fleet")
		if sp != nil {
			sp.Annotate("%d byte(s)", len(buf))
			shipCtx = telemetry.WithSpan(ctx, sp.Context())
		}
		seq, err := ps.peer.Replicate(shipCtx, buf)
		r.mu.Lock()
		switch {
		case err == nil:
			sp.Finish("ok")
			ps.shipped.Add(float64(bytes.Count(buf, []byte{'\n'})))
			r.ackLocked(ps, seq)
			r.mu.Unlock()
		case errors.Is(err, ErrPeerGap):
			sp.Finish("gap")
			ps.needSnap = true
			ps.snapGen++
			r.mu.Unlock()
		default:
			sp.Finish("error")
			// Transient transport failure: put the frames back in front of
			// anything buffered meanwhile and retry after a pause; the trace
			// identity goes back with them unless a newer one arrived.
			ps.buf = append(buf, ps.buf...)
			if sc.Valid() && !ps.sc.Valid() {
				ps.sc = sc
			}
			r.mu.Unlock()
			if r.clock.Sleep(ctx, r.retryDelay) != nil {
				return
			}
		}
	}
}

// shipSnapshot performs one snapshot catch-up attempt. The generation
// check guards a race: if an overflow drops frames while this snapshot is
// in flight, the image predates the loss, so needSnap must stay set and a
// fresh snapshot goes out on the next pass.
func (r *Replicator) shipSnapshot(ctx context.Context, ps *peerState) {
	r.mu.Lock()
	gen := ps.snapGen
	r.mu.Unlock()
	image, _, err := r.src.SnapshotImage()
	if err == nil {
		var seq uint64
		if seq, err = ps.peer.InstallSnapshot(ctx, image); err == nil {
			r.mu.Lock()
			if ps.snapGen == gen {
				ps.needSnap = false
			}
			ps.catchups.Inc()
			r.ackLocked(ps, seq)
			r.mu.Unlock()
			return
		}
	}
	if r.clock.Sleep(ctx, r.retryDelay) != nil {
		return
	}
}

// ackLocked records a follower acknowledgement and wakes waiters.
func (r *Replicator) ackLocked(ps *peerState, seq uint64) {
	if seq > ps.acked {
		ps.acked = seq
	}
	ps.lag.Set(float64(r.lastSeq - min64(ps.acked, r.lastSeq)))
	r.cond.Broadcast()
}
