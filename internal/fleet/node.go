// Node: one member of a Rockhopper backend fleet. Each node runs
//
//   - a primary durable store for the shards it owns, with the store's
//     OnAppend tap feeding a Replicator that log-ships every WAL frame to
//     the node's followers;
//   - one follower (replica) durable store per peer it follows, fed by
//     that peer's shipped frames through the fleet HTTP endpoints;
//   - the full backend HTTP surface, with FleetHooks installed so
//     misrouted ingests bounce (421) to the owning node and every 202 is
//     gated on follower acknowledgement;
//   - a pull heartbeat that detects a dead owner it follows and promotes
//     itself: the replica store's state is absorbed into the primary
//     (timestamps preserved, idempotent), after which the dead node's
//     signatures are served here — byte-identically, because the replica
//     held a verbatim copy of the owner's log.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/backend"
	"github.com/rockhopper-db/rockhopper/internal/flightrec"
	"github.com/rockhopper-db/rockhopper/internal/resilience"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// Fleet HTTP defaults.
const (
	// DefaultHeartbeatFailures is how many consecutive heartbeat misses
	// mark an owner dead.
	DefaultHeartbeatFailures = 3
	// promoteChunk bounds one absorb group commit, so promoting a large
	// shard produces bounded WAL records instead of one giant frame.
	promoteChunk = 1024
)

// NodeOptions parameterizes NewNode.
type NodeOptions struct {
	// ID is this node's identifier; it must appear as a key in Peers.
	ID string
	// Peers maps every fleet member (this node included) to its base URL.
	Peers map[string]string
	// Replicas is the replica-set size including the owner.
	Replicas int
	// Vnodes and Seed parameterize ring placement; all members and all
	// clients must agree on them.
	Vnodes int
	Seed   uint64

	// Space is the Spark parameter space the backend tunes over.
	Space *sparksim.Space
	// DataDir roots the node's stores: primary under DataDir/primary,
	// replicas under DataDir/replica-<owner>.
	DataDir string
	// StoreSecret signs access tokens; ClusterSecret authenticates both
	// cluster clients and fleet peer calls.
	StoreSecret   []byte
	ClusterSecret string

	// Clock drives heartbeats, retries, and store timestamps; nil means
	// the wall clock. Metrics receives every instrument; nil discards.
	Clock   resilience.Clock
	Metrics *telemetry.Registry
	Logger  *log.Logger
	// HTTPClient performs peer calls; nil means http.DefaultClient.
	HTTPClient *http.Client
	// PeerFactory overrides the peer transport (in-process tests); nil
	// means HTTP against the peer's base URL.
	PeerFactory func(followerID, baseURL string) Peer

	// Store tuning, passed through to the primary store. Hooks is the
	// crash-point injector the failover drills use to kill the owner at
	// exact durability states.
	SnapshotInterval time.Duration
	CompactEvery     int
	NoSync           bool
	Hooks            func(store.CrashPoint) error

	// Replication tuning (see ReplicatorOptions).
	MaxBuffer  int
	RetryDelay time.Duration
	// HeartbeatInterval is the owner-liveness poll cadence; <= 0 disables
	// the failure detector (drills then drive Promote directly).
	HeartbeatInterval time.Duration
	// HeartbeatFailures is the consecutive-miss threshold; 0 means
	// DefaultHeartbeatFailures.
	HeartbeatFailures int

	// TraceRingSpans sizes the backend's span ring (autotuned -trace-ring);
	// <= 0 means the backend default.
	TraceRingSpans int
	// SLOLatency is the per-request latency objective passed to the
	// backend; a breach dumps the flight recorder. <= 0 disables the check.
	SLOLatency time.Duration
	// FlightRecorder is the node's black-box event ring; nil disables it.
	// The node dumps it on a durable-store crash latch and on promotion.
	FlightRecorder *flightrec.Recorder
}

// Node is one fleet member. Construct with NewNode, mount Handler, then
// Start; Close releases the stores.
type Node struct {
	id            string
	peers         map[string]string
	topo          *Topology
	space         *sparksim.Space
	clusterSecret string
	clock         resilience.Clock
	logger        *log.Logger
	httpClient    *http.Client
	hbInterval    time.Duration
	hbFailures    int

	primary  *store.DurableStore
	replicas map[string]*store.DurableStore // ownerID -> replica store
	repl     *Replicator
	backend  *backend.Server
	flight   *flightrec.Recorder

	ownershipMoves telemetry.Counter

	mu       sync.Mutex
	promoted map[string]bool // dead owners this node has absorbed
	wg       sync.WaitGroup
}

// NewNode opens the node's stores and builds its backend. Nothing ships
// until Start.
func NewNode(opts NodeOptions) (*Node, error) {
	if opts.ID == "" {
		return nil, errors.New("fleet: node needs an ID")
	}
	if _, ok := opts.Peers[opts.ID]; !ok {
		return nil, fmt.Errorf("fleet: node %q is not in the peer map", opts.ID)
	}
	ids := make([]string, 0, len(opts.Peers))
	for id := range opts.Peers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	clock := opts.Clock
	if clock == nil {
		clock = resilience.RealClock{}
	}
	n := &Node{
		id:            opts.ID,
		peers:         opts.Peers,
		topo:          NewTopology(ids, opts.Replicas, opts.Vnodes, opts.Seed),
		space:         opts.Space,
		clusterSecret: opts.ClusterSecret,
		clock:         clock,
		logger:        opts.Logger,
		httpClient:    opts.HTTPClient,
		hbInterval:    opts.HeartbeatInterval,
		hbFailures:    opts.HeartbeatFailures,
		replicas:      make(map[string]*store.DurableStore),
		promoted:      make(map[string]bool),
		flight:        opts.FlightRecorder,
		ownershipMoves: opts.Metrics.Counter("rockhopper_fleet_ownership_moves_total",
			"Shard ownership moves (node deaths absorbed by a follower).").With(),
	}
	if n.httpClient == nil {
		n.httpClient = http.DefaultClient
	}
	if n.hbFailures <= 0 {
		n.hbFailures = DefaultHeartbeatFailures
	}

	primary, err := store.OpenDurable(opts.DataDir+"/primary", opts.StoreSecret, store.DurableOptions{
		Clock:            clock,
		SnapshotInterval: opts.SnapshotInterval,
		CompactEvery:     opts.CompactEvery,
		NoSync:           opts.NoSync,
		Logger:           opts.Logger,
		Hooks:            opts.Hooks,
		Metrics:          opts.Metrics,
		OnAppend:         func(seq uint64, frame []byte, sc telemetry.SpanContext) { n.repl.Observe(seq, frame, sc) },
		OnDown:           n.storeCrashed,
	})
	if err != nil {
		return nil, err
	}
	n.primary = primary

	// Open one replica store per owner this node follows. Crash hooks are
	// NOT installed on replica stores: drills kill owners, and a follower
	// that dies is simply a lagging peer.
	for _, owner := range ids {
		if owner == n.id {
			continue
		}
		follows := false
		for _, f := range n.topo.FollowersOf(owner) {
			if f == n.id {
				follows = true
				break
			}
		}
		if !follows {
			continue
		}
		rs, err := store.OpenDurable(opts.DataDir+"/replica-"+pathSafe(owner), opts.StoreSecret, store.DurableOptions{
			Clock:   clock,
			NoSync:  opts.NoSync,
			Logger:  opts.Logger,
			Metrics: nil, // replica stores stay off the primary WAL series
		})
		if err != nil {
			primary.Close()
			for _, r := range n.replicas {
				r.Close()
			}
			return nil, err
		}
		n.replicas[owner] = rs
	}

	n.repl = NewReplicator(primary, ReplicatorOptions{
		Clock:      clock,
		Metrics:    opts.Metrics,
		MaxBuffer:  opts.MaxBuffer,
		RetryDelay: opts.RetryDelay,
	})
	for _, f := range n.topo.FollowersOf(n.id) {
		if opts.PeerFactory != nil {
			n.repl.AddPeer(f, opts.PeerFactory(f, opts.Peers[f]))
		} else {
			n.repl.AddPeer(f, &httpPeer{
				client: n.httpClient,
				base:   opts.Peers[f],
				from:   n.id,
				secret: opts.ClusterSecret,
			})
		}
	}

	b := backend.New(opts.Space, primary, opts.ClusterSecret, opts.Seed)
	// Identity and ring sizing must land before SetMetrics: bindTelemetry
	// bakes both into the tracer it constructs.
	b.NodeName = opts.ID
	b.TraceRingSpans = opts.TraceRingSpans
	b.SLOLatency = opts.SLOLatency
	if opts.Clock != nil {
		b.SetClock(opts.Clock)
	}
	if opts.Metrics != nil {
		b.SetMetrics(opts.Metrics)
	}
	b.SetFlightRecorder(opts.FlightRecorder)
	b.Logger = opts.Logger
	b.SetFleet(n)
	n.backend = b
	// Every co-located component records into the backend's span ring: the
	// primary's WAL commits, the follower stores' replicated applies, and
	// the replicator's ship/wait pipeline all join one /api/trace surface.
	primary.SetTracer(b.Tracer())
	for _, rs := range n.replicas {
		rs.SetTracer(b.Tracer())
	}
	n.repl.SetTracer(b.Tracer())
	return n, nil
}

// storeCrashed is the primary store's OnDown observer: the node's black box
// dumps itself the moment durability latches, preserving the events that
// led up to the crash. Called under the store lock; the recorder never
// calls back into the store.
func (n *Node) storeCrashed(err error) {
	n.flight.Eventf(flightrec.LevelError, "store", telemetry.SpanContext{}, "durable store latched down: %v", err)
	if path, derr := n.flight.Dump("store_crash_latch"); derr != nil {
		n.logf("fleet: flight-recorder dump failed: %v", derr)
	} else if path != "" {
		n.logf("fleet: store crash latch; flight recorder dumped to %s", path)
	}
}

// pathSafe makes a node ID usable as a directory segment.
func pathSafe(id string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			return r
		}
		return '_'
	}, id)
}

// Backend exposes the node's backend server (tuning knobs, Flush).
func (n *Node) Backend() *backend.Server { return n.backend }

// Store exposes the node's primary durable store.
func (n *Node) Store() *store.DurableStore { return n.primary }

// Topology exposes the node's fleet view (drills mark deaths through it).
func (n *Node) Topology() *Topology { return n.topo }

// Replicator exposes the shipping pipeline (tests assert on lag).
func (n *Node) Replicator() *Replicator { return n.repl }

// OwnerOf implements backend.FleetHooks: it resolves the signature through
// the topology (promotion walk included) to the owning node's address.
func (n *Node) OwnerOf(signature string) (owner string, self bool) {
	id := n.topo.Owner(signature)
	if id == n.id {
		return n.peers[id], true
	}
	return n.peers[id], false
}

// AwaitReplication implements backend.FleetHooks: it blocks until every
// follower acknowledged the primary's current sequence number. Requests
// call it after their commit, so the awaited sequence covers the commit.
func (n *Node) AwaitReplication(ctx context.Context) error {
	return n.repl.WaitReplicated(ctx, n.primary.Seq())
}

// Start launches the replication pipelines and the heartbeat failure
// detector. The goroutines exit when ctx is cancelled.
func (n *Node) Start(ctx context.Context) {
	n.repl.Start(ctx)
	if n.hbInterval > 0 {
		for owner := range n.replicas {
			n.wg.Add(1)
			go func(owner string) {
				defer n.wg.Done()
				n.heartbeat(ctx, owner)
			}(owner)
		}
	}
}

// Close stops the backend's streaming jobs and releases every store.
func (n *Node) Close() error {
	n.backend.Close()
	n.repl.Stop()
	n.wg.Wait()
	err := n.primary.Close()
	for _, owner := range sortedKeys(n.replicas) {
		if cerr := n.replicas[owner].Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

func sortedKeys(m map[string]*store.DurableStore) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// heartbeat polls one owner this node follows; after hbFailures
// consecutive misses the owner is declared dead and this node promotes.
func (n *Node) heartbeat(ctx context.Context, owner string) {
	misses := 0
	for {
		if n.clock.Sleep(ctx, n.hbInterval) != nil {
			return
		}
		if n.pingOwner(ctx, owner) {
			misses = 0
			continue
		}
		misses++
		if misses < n.hbFailures {
			continue
		}
		n.Promote(owner)
		return // dead owners stay dead; rejoin is an operator action
	}
}

// pingOwner probes an owner's health endpoint.
func (n *Node) pingOwner(ctx context.Context, owner string) bool {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.peers[owner]+"/api/health", nil)
	if err != nil {
		return false
	}
	resp, err := n.httpClient.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode < 500
}

// Promote handles the death of a node. Every caller (heartbeat, drill,
// operator endpoint) converges on the same steps: mark the node dead in
// the topology, and — when this node is the promotion target and holds the
// dead node's replica — absorb the replica store into the primary so the
// dead node's signatures are served here with their exact replicated
// bytes. Absorption is idempotent and chunked.
func (n *Node) Promote(dead string) {
	target, changed := n.topo.MarkDead(dead)
	if changed {
		n.ownershipMoves.Inc()
		n.logf("fleet: node %s marked dead; keys route to %s", dead, target)
	}
	// If the dead node was one of our followers, stop waiting on its acks:
	// ingest must not block on a peer that can never answer.
	n.repl.DropPeer(dead)
	if target != n.id {
		return
	}
	rs, ok := n.replicas[dead]
	if !ok {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.promoted[dead] {
		return
	}
	// The replay is a deliberate trace origin: a promote_replay root span
	// with each absorb chunk's WAL append as a child, so rockmon -trace can
	// reconstruct what failover actually replayed and how long it took.
	//rocklint:allow ctxflow -- promotion is a node-lifetime ownership change: a cancelled heartbeat or request context must NOT abort a half-absorbed shard, so the replay deliberately detaches from the trigger's context
	ctx, sp := n.backend.Tracer().StartRoot(context.Background(), "promote_replay", "fleet")
	sp.Annotate("absorbing %s", dead)
	status := "ok"
	defer func() { sp.Finish(status) }()
	export := rs.Export()
	total := len(export)
	for len(export) > 0 {
		c := promoteChunk
		if c > len(export) {
			c = len(export)
		}
		//rocklint:allow deadlockcycle -- promotion absorb is deliberately exclusive: n.mu serializes Promote so a dead owner's replica is folded in exactly once, and the chunked fsync-bounded batches keep each critical section short
		if err := n.primary.PutBatchAtCtx(ctx, export[:c]); err != nil {
			n.logf("fleet: absorb of %s halted: %v", dead, err)
			status = "error"
			return // not marked promoted; the next Promote retries
		}
		export = export[c:]
	}
	n.promoted[dead] = true
	sp.Annotate("%d object(s)", total)
	n.logf("fleet: absorbed %d object(s) from dead node %s", total, dead)
	n.flight.Eventf(flightrec.LevelWarn, "fleet", sp.Context(),
		"promoted over dead node %s (%d object(s) absorbed)", dead, total)
	if path, err := n.flight.Dump("promotion"); err != nil {
		n.logf("fleet: flight-recorder dump failed: %v", err)
	} else if path != "" {
		n.logf("fleet: promotion over %s; flight recorder dumped to %s", dead, path)
	}
}

func (n *Node) logf(format string, args ...any) {
	if n.logger != nil {
		n.logger.Printf(format, args...)
	}
}

// replicateResponse is the fleet endpoints' acknowledgement body.
type replicateResponse struct {
	Seq uint64 `json:"seq"`
}

// statusResponse is GET /api/fleet/status.
type statusResponse struct {
	ID       string            `json:"id"`
	Seq      uint64            `json:"seq"`
	Lag      map[string]uint64 `json:"lag,omitempty"`
	Promoted []string          `json:"promoted,omitempty"`
}

// Handler returns the node's full HTTP surface: the backend routes plus
// the fleet peer endpoints.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", n.backend.Handler())
	mux.HandleFunc("POST /api/fleet/replicate", n.peerAuth(n.handleReplicate))
	mux.HandleFunc("PUT /api/fleet/snapshot", n.peerAuth(n.handleSnapshot))
	mux.HandleFunc("POST /api/fleet/promote", n.peerAuth(n.handlePromote))
	mux.HandleFunc("GET /api/fleet/status", n.handleStatus)
	return mux
}

// peerAuth gates fleet endpoints on the cluster secret.
func (n *Node) peerAuth(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(backend.ClusterTokenHeader) != n.clusterSecret {
			http.Error(w, "cluster token rejected", http.StatusUnauthorized)
			return
		}
		h(w, r)
	}
}

// replicaFor resolves the ?from= owner to its replica store.
func (n *Node) replicaFor(w http.ResponseWriter, r *http.Request) (*store.DurableStore, bool) {
	from := r.URL.Query().Get("from")
	rs, ok := n.replicas[from]
	if !ok {
		http.Error(w, fmt.Sprintf("fleet: node %s does not follow %q", n.id, from), http.StatusNotFound)
		return nil, false
	}
	return rs, true
}

// handleReplicate applies shipped WAL frames to the owner's replica store.
// A sequence gap answers 409 with the replica's current sequence so the
// owner falls back to snapshot catch-up. An inbound trace identity (set by
// the owner's replicate span) parents this node's fleet_replicate span, so
// the apply and its fsync join the owner's cross-node tree.
func (n *Node) handleReplicate(w http.ResponseWriter, r *http.Request) {
	rs, ok := n.replicaFor(w, r)
	if !ok {
		return
	}
	frames, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 128<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	inbound, _ := telemetry.ParseTraceHeader(r.Header.Get(telemetry.TraceHeader))
	sp := n.backend.Tracer().StartRemote(inbound, "fleet_replicate", "server")
	ctx := r.Context()
	if sp != nil {
		ctx = telemetry.WithSpan(ctx, sp.Context())
	}
	seq, err := rs.ApplyReplicatedCtx(ctx, frames)
	if err != nil {
		sp.Finish("error")
	} else {
		sp.Finish("ok")
	}
	if err != nil {
		if errors.Is(err, store.ErrReplicaGap) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusConflict)
			json.NewEncoder(w).Encode(replicateResponse{Seq: seq})
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, replicateResponse{Seq: seq})
}

// handleSnapshot installs a full snapshot image on the owner's replica.
func (n *Node) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	rs, ok := n.replicaFor(w, r)
	if !ok {
		return
	}
	image, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 512<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	seq, err := rs.InstallSnapshot(image)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, replicateResponse{Seq: seq})
}

// handlePromote lets drills and operators declare a node dead.
func (n *Node) handlePromote(w http.ResponseWriter, r *http.Request) {
	dead := r.URL.Query().Get("node")
	if dead == "" {
		http.Error(w, "node required", http.StatusBadRequest)
		return
	}
	n.Promote(dead)
	n.handleStatus(w, r)
}

// handleStatus reports the node's replication position.
func (n *Node) handleStatus(w http.ResponseWriter, r *http.Request) {
	n.mu.Lock()
	promoted := make([]string, 0, len(n.promoted))
	for id := range n.promoted {
		promoted = append(promoted, id)
	}
	n.mu.Unlock()
	sort.Strings(promoted)
	writeJSON(w, statusResponse{
		ID:       n.id,
		Seq:      n.primary.Seq(),
		Lag:      n.repl.Lag(),
		Promoted: promoted,
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// httpPeer ships frames and snapshots to a follower over the fleet HTTP
// endpoints.
type httpPeer struct {
	client *http.Client
	base   string
	from   string
	secret string
}

// Replicate implements Peer over POST /api/fleet/replicate.
func (p *httpPeer) Replicate(ctx context.Context, frames []byte) (uint64, error) {
	return p.post(ctx, http.MethodPost, "/api/fleet/replicate", frames)
}

// InstallSnapshot implements Peer over PUT /api/fleet/snapshot.
func (p *httpPeer) InstallSnapshot(ctx context.Context, image []byte) (uint64, error) {
	return p.post(ctx, http.MethodPut, "/api/fleet/snapshot", image)
}

func (p *httpPeer) post(ctx context.Context, method, path string, body []byte) (uint64, error) {
	u := p.base + path + "?from=" + url.QueryEscape(p.from)
	req, err := http.NewRequestWithContext(ctx, method, u, strings.NewReader(string(body)))
	if err != nil {
		return 0, err
	}
	req.Header.Set(backend.ClusterTokenHeader, p.secret)
	if sc := telemetry.SpanFrom(ctx); sc.Valid() {
		req.Header.Set(telemetry.TraceHeader, sc.String())
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	var ack replicateResponse
	switch resp.StatusCode {
	case http.StatusOK:
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			return 0, fmt.Errorf("fleet: decode replicate ack: %w", err)
		}
		return ack.Seq, nil
	case http.StatusConflict:
		json.NewDecoder(resp.Body).Decode(&ack)
		return ack.Seq, ErrPeerGap
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return 0, fmt.Errorf("fleet: peer %s%s: %s: %s", p.base, path, resp.Status, strings.TrimSpace(string(msg)))
	}
}

// StorePeer adapts a local durable store as a Peer — the in-process
// transport unit tests and single-process fleets use.
type StorePeer struct {
	Store *store.DurableStore
}

// Replicate implements Peer.
func (p StorePeer) Replicate(ctx context.Context, frames []byte) (uint64, error) {
	seq, err := p.Store.ApplyReplicatedCtx(ctx, frames)
	if errors.Is(err, store.ErrReplicaGap) {
		return seq, fmt.Errorf("%w: %v", ErrPeerGap, err)
	}
	return seq, err
}

// InstallSnapshot implements Peer.
func (p StorePeer) InstallSnapshot(ctx context.Context, image []byte) (uint64, error) {
	return p.Store.InstallSnapshot(image)
}
