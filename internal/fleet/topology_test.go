package fleet

import (
	"reflect"
	"testing"
)

func TestTopologyFollowerChain(t *testing.T) {
	t.Parallel()
	topo := NewTopology([]string{"c", "a", "b", "d"}, 3, 16, 1)
	if got := topo.Nodes(); !reflect.DeepEqual(got, []string{"a", "b", "c", "d"}) {
		t.Fatalf("Nodes() = %v", got)
	}
	// Followers are cyclic successors in sorted ID order, replicas-1 wide.
	cases := map[string][]string{
		"a": {"b", "c"},
		"c": {"d", "a"},
		"d": {"a", "b"},
	}
	for node, want := range cases {
		if got := topo.FollowersOf(node); !reflect.DeepEqual(got, want) {
			t.Fatalf("FollowersOf(%s) = %v, want %v", node, got, want)
		}
	}
	if got := topo.FollowersOf("nope"); got != nil {
		t.Fatalf("FollowersOf(unknown) = %v", got)
	}
}

func TestTopologyPromotionWalk(t *testing.T) {
	t.Parallel()
	topo := NewTopology([]string{"a", "b", "c"}, 2, 16, 9)
	sig := "sig-route"
	home := topo.HomeOwner(sig)
	if home == "" || topo.Owner(sig) != home {
		t.Fatalf("healthy fleet: owner %q, home %q", topo.Owner(sig), home)
	}
	wantPromoted := topo.FollowersOf(home)[0]
	promoted, changed := topo.MarkDead(home)
	if !changed || promoted != wantPromoted {
		t.Fatalf("MarkDead(%s) = (%q, %v), want (%q, true)", home, promoted, changed, wantPromoted)
	}
	if got := topo.Owner(sig); got != wantPromoted {
		t.Fatalf("after owner death, Owner = %q, want first live follower %q", got, wantPromoted)
	}
	if topo.HomeOwner(sig) != home {
		t.Fatal("MarkDead must not re-hash placement")
	}
	// Double death: the walk continues past the dead follower.
	if _, changed := topo.MarkDead(wantPromoted); !changed {
		t.Fatal("second MarkDead not recorded")
	}
	third := topo.Owner(sig)
	if third == home || third == wantPromoted || third == "" {
		t.Fatalf("double death routed to %q", third)
	}
	// Whole fleet down routes nowhere; recovery routes home again.
	topo.MarkDead(third)
	if got := topo.Owner(sig); got != "" {
		t.Fatalf("all-dead fleet still routes to %q", got)
	}
	if !topo.MarkLive(home) || topo.MarkLive(home) {
		t.Fatal("MarkLive change reporting broken")
	}
	if got := topo.Owner(sig); got != home {
		t.Fatalf("after recovery Owner = %q, want %q", got, home)
	}
}

func TestTopologyReplicaSet(t *testing.T) {
	t.Parallel()
	topo := NewTopology([]string{"n1", "n2", "n3", "n4"}, 3, 16, 2)
	for _, sig := range []string{"x", "y", "z", "sig-42"} {
		set := topo.ReplicaSet(sig)
		if len(set) != 3 {
			t.Fatalf("ReplicaSet(%q) = %v", sig, set)
		}
		if set[0] != topo.HomeOwner(sig) {
			t.Fatalf("replica set head %q is not the home owner", set[0])
		}
		if want := topo.FollowersOf(set[0]); !reflect.DeepEqual(set[1:], want) {
			t.Fatalf("replica tail %v, want followers %v", set[1:], want)
		}
	}
}

func TestTopologyReplicasClamped(t *testing.T) {
	t.Parallel()
	if got := NewTopology([]string{"a", "b"}, 5, 8, 0).Replicas(); got != 2 {
		t.Fatalf("replicas clamped to %d, want 2", got)
	}
	if got := NewTopology([]string{"a", "b", "c"}, 0, 8, 0).Replicas(); got != 1 {
		t.Fatalf("replicas clamped to %d, want 1", got)
	}
}
