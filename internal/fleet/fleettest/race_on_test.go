//go:build race

package fleettest

// raceEnabled reports whether the race detector is compiled in. The load
// harness shrinks its signature count and skips wall-clock SLO gates under
// the detector: the drills' correctness invariants still run in full, but
// latency numbers from an instrumented binary gate nothing meaningful.
const raceEnabled = true
