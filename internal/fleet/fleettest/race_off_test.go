//go:build !race

package fleettest

// raceEnabled mirrors race_on_test.go for non-instrumented builds.
const raceEnabled = false
