// Package fleettest is the fleet-scale verification harness: it spins up
// an in-process sharded, replicated backend fleet over real HTTP and real
// durable stores, drives sustained load through the batch ingest path, and
// gates the result on p99 latency SLOs read from the nodes' telemetry
// registries. The drill tests kill shard owners at exact store crash
// points mid-ingest and prove zero acknowledged-event loss: every 202 the
// dead owner issued is served byte-identically by the promoted replica.
package fleettest

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync/atomic"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/fleet"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// ClusterOptions parameterizes NewCluster.
type ClusterOptions struct {
	// IDs are the node identifiers.
	IDs []string
	// Replicas is the replica-set size including the owner.
	Replicas int
	// Vnodes and Seed are the ring parameters.
	Vnodes int
	Seed   uint64
	// StoreSecret and ClusterSecret are shared fleet credentials.
	StoreSecret   []byte
	ClusterSecret string
	// NoSync skips fsync in the stores (load runs that measure the HTTP
	// path, not the disk).
	NoSync bool
	// MaxPendingUpdates widens each backend's updater queue so bulk load
	// is not shed by the admission path under test.
	MaxPendingUpdates int
	// RequestTimeout overrides each backend's per-request deadline when
	// non-zero (load runs on instrumented builds outlive the default).
	RequestTimeout time.Duration
	// Hooks installs a crash-point injector on one node's primary store.
	Hooks map[string]func(store.CrashPoint) error
	// CompactEvery lowers the WAL compaction threshold so drills can reach
	// the snapshot-rename crash points within a short ingest run.
	CompactEvery int
	// RetryDelay tunes replication retry pacing.
	RetryDelay time.Duration
}

// Cluster is an in-process fleet: every node serves real HTTP on loopback
// and replicates over it.
type Cluster struct {
	Nodes      map[string]*fleet.Node
	Servers    map[string]*httptest.Server
	Peers      map[string]string
	Registries map[string]*telemetry.Registry

	cancel context.CancelFunc
}

// swapHandler lets servers start (fixing their URLs) before the nodes that
// will serve on them exist.
type swapHandler struct{ h atomic.Value }

func (s *swapHandler) set(h http.Handler) { s.h.Store(h) }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := s.h.Load().(http.Handler); ok {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "node not ready", http.StatusServiceUnavailable)
}

// NewCluster builds and starts a fleet. dirFor supplies each node's data
// directory (tests pass t.TempDir-backed paths).
func NewCluster(dirFor func(id string) string, opts ClusterOptions) (*Cluster, error) {
	c := &Cluster{
		Nodes:      make(map[string]*fleet.Node),
		Servers:    make(map[string]*httptest.Server),
		Peers:      make(map[string]string),
		Registries: make(map[string]*telemetry.Registry),
	}
	swaps := make(map[string]*swapHandler)
	for _, id := range opts.IDs {
		sw := &swapHandler{}
		srv := httptest.NewServer(sw)
		swaps[id] = sw
		c.Servers[id] = srv
		c.Peers[id] = srv.URL
	}
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	for _, id := range opts.IDs {
		reg := telemetry.NewRegistry()
		n, err := fleet.NewNode(fleet.NodeOptions{
			ID:            id,
			Peers:         c.Peers,
			Replicas:      opts.Replicas,
			Vnodes:        opts.Vnodes,
			Seed:          opts.Seed,
			Space:         sparksim.QuerySpace(),
			DataDir:       dirFor(id),
			StoreSecret:   opts.StoreSecret,
			ClusterSecret: opts.ClusterSecret,
			Metrics:       reg,
			NoSync:        opts.NoSync,
			Hooks:         opts.Hooks[id],
			CompactEvery:  opts.CompactEvery,
			RetryDelay:    opts.RetryDelay,
		})
		if err != nil {
			cancel()
			c.Close()
			return nil, fmt.Errorf("fleettest: node %s: %w", id, err)
		}
		if opts.MaxPendingUpdates > 0 {
			n.Backend().MaxPendingUpdates = opts.MaxPendingUpdates
		}
		if opts.RequestTimeout != 0 {
			n.Backend().RequestTimeout = opts.RequestTimeout
		}
		c.Nodes[id] = n
		c.Registries[id] = reg
		swaps[id].set(n.Handler())
	}
	for _, n := range c.Nodes {
		n.Start(ctx)
	}
	return c, nil
}

// KillNode closes a node's HTTP server — the fleet-visible death. The
// node's stores stay on disk for post-mortem comparison.
func (c *Cluster) KillNode(id string) { c.Servers[id].Close() }

// Close tears the whole fleet down.
func (c *Cluster) Close() {
	if c.cancel != nil {
		c.cancel()
	}
	for _, srv := range c.Servers {
		srv.Close()
	}
	for _, n := range c.Nodes {
		n.Close()
	}
}

// Scrape renders and re-parses one node's registry — the same round trip
// rockmon's scrape mode performs.
func Scrape(reg *telemetry.Registry) ([]telemetry.Family, error) {
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		return nil, err
	}
	return telemetry.ParseText(&buf)
}

// HistogramQuantile computes quantile q (0..1) of a scraped histogram by
// linear interpolation inside the owning bucket — the same estimate
// histogram_quantile gives in PromQL. match filters the series by labels
// (le excluded). ok is false when no matching observations exist.
func HistogramQuantile(fams []telemetry.Family, name string, match map[string]string, q float64) (float64, bool) {
	fam, found := telemetry.Find(fams, name)
	if !found {
		return 0, false
	}
	type bucket struct {
		le  float64
		cum float64
	}
	var buckets []bucket
	for _, s := range fam.Series {
		if s.Name != name+"_bucket" {
			continue
		}
		ok := true
		for k, v := range match {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		le, err := parseLE(s.Labels["le"])
		if err != nil {
			continue
		}
		buckets = append(buckets, bucket{le: le, cum: s.Value})
	}
	if len(buckets) == 0 {
		return 0, false
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	total := buckets[len(buckets)-1].cum // +Inf bucket
	if total == 0 {
		return 0, false
	}
	rank := q * total
	prevBound, prevCum := 0.0, 0.0
	for _, b := range buckets {
		if b.cum >= rank {
			if b.le > 1e300 { // +Inf bucket: clamp to the last finite bound
				return prevBound, true
			}
			if b.cum == prevCum {
				return b.le, true
			}
			return prevBound + (b.le-prevBound)*(rank-prevCum)/(b.cum-prevCum), true
		}
		prevBound, prevCum = b.le, b.cum
	}
	return prevBound, true
}

func parseLE(s string) (float64, error) {
	if s == "+Inf" {
		return 1e308, nil
	}
	var v float64
	_, err := fmt.Sscanf(s, "%g", &v)
	return v, err
}

// SeriesValue reads one sample value from a scrape; ok is false when the
// series is absent.
func SeriesValue(fams []telemetry.Family, name string, match map[string]string) (float64, bool) {
	fam, found := telemetry.Find(fams, name)
	if !found {
		return 0, false
	}
	for _, s := range fam.Series {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range match {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s.Value, true
		}
	}
	return 0, false
}
