package fleettest

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/client"
	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/parallel"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

const (
	loadSeed   = 1337
	loadVnodes = 32
	loadBatch  = 500
	// Latency SLOs the harness gates on, in seconds. They are deliberately
	// loose — the gate exists to catch order-of-magnitude regressions
	// (lock contention, accidental per-event fsync, replication stalls),
	// not to benchmark the host.
	sloBatchP99 = 2.5
	sloReplP99  = 2.5
)

// TestFleetLoadMeetsP99SLO drives hundreds of thousands of synthetic
// signatures (a bounded slice in -short) through a 3-node replicated
// fleet's batch ingest path via the parallel pool, then gates on p99
// latency SLOs read back from the nodes' telemetry registries. Every 202
// in this run was replication-gated, so a passing run also proves the
// synchronous-ack pipeline sustains the load.
func TestFleetLoadMeetsP99SLO(t *testing.T) {
	sigs := 200_000
	if raceEnabled {
		sigs = 10_000 // the detector slows ingest ~30x; keep the run bounded
	}
	if testing.Short() {
		sigs = 4_000
	}
	ids := []string{"n1", "n2", "n3"}
	cluster, err := NewCluster(func(string) string { return t.TempDir() }, ClusterOptions{
		IDs:               ids,
		Replicas:          2,
		Vnodes:            loadVnodes,
		Seed:              loadSeed,
		StoreSecret:       []byte("fleettest-secret"),
		ClusterSecret:     "fleettest-cluster",
		NoSync:            true, // the load run measures the pipeline, not the disk
		MaxPendingUpdates: sigs + 1,
		RequestTimeout:    2 * time.Minute,
		RetryDelay:        2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	router := client.NewShardRouter(client.ShardRouterOptions{
		Peers:         cluster.Peers,
		Replicas:      2,
		Vnodes:        loadVnodes,
		Seed:          loadSeed,
		ClusterSecret: "fleettest-cluster",
		Configure: func(id string, c *client.Client) {
			// The harness measures the fleet's latency via the server-side
			// histograms; the driving clients must not self-throttle or
			// give up while the instrumented pipeline is merely slow.
			c.CallTimeout = 2 * time.Minute
			c.Breaker = nil
		},
	})

	space := sparksim.QuerySpace()
	nBatches := (sigs + loadBatch - 1) / loadBatch
	// The batch path is I/O-bound (HTTP + replication waits), so ask for
	// more workers than cores; Workers still clamps to the batch count.
	// Under the race detector the pipeline is CPU-bound instead — fewer
	// in-flight batches keeps per-request latency bounded.
	requested := 16
	if raceEnabled {
		requested = 4
	}
	workers := parallel.Workers(requested, nBatches)
	var accepted atomic.Int64
	start := time.Now()
	err = parallel.Each(context.Background(), nBatches, workers, func(ctx context.Context, i int) error {
		lo := i * loadBatch
		hi := lo + loadBatch
		if hi > sigs {
			hi = sigs
		}
		traces := make([]flighting.Trace, 0, hi-lo)
		for s := lo; s < hi; s++ {
			traces = append(traces, flighting.Trace{
				QueryID:  fmt.Sprintf("sig-%06d", s),
				Config:   space.Default(),
				DataSize: float64(s%7 + 1),
				TimeMs:   float64(50 + s%200),
			})
		}
		resp, err := router.PostEventBatch(ctx, "load", fmt.Sprintf("job-%04d", i), traces)
		if err != nil {
			return fmt.Errorf("batch %d: %w", i, err)
		}
		accepted.Add(int64(resp.Events))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if got := accepted.Load(); got != int64(sigs) {
		t.Fatalf("accepted %d events, want %d", got, sigs)
	}
	t.Logf("fleet load: %d signatures in %v (%.0f events/s, %d workers, %d-node fleet)",
		sigs, elapsed.Round(time.Millisecond), float64(sigs)/elapsed.Seconds(), workers, len(ids))

	// Every signature must be durable exactly once across the fleet's
	// primaries — sharding must neither drop nor duplicate.
	total := 0
	for id, n := range cluster.Nodes {
		files := len(n.Store().List("events/"))
		if files == 0 {
			t.Errorf("node %s ingested nothing: the ring failed to spread load", id)
		}
		total += files
	}
	if total != sigs {
		t.Fatalf("fleet holds %d event files, want %d", total, sigs)
	}

	// SLO gates, read from each node's own registry — the same series
	// rockmon scrapes in CI. Latency from a race-instrumented binary gates
	// nothing, so only the correctness assertions run under the detector.
	for id, reg := range cluster.Registries {
		fams, err := Scrape(reg)
		if err != nil {
			t.Fatalf("scrape %s: %v", id, err)
		}
		if !raceEnabled {
			if p99, ok := HistogramQuantile(fams, "rockhopper_http_request_duration_seconds",
				map[string]string{"endpoint": "events_batch"}, 0.99); ok && p99 > sloBatchP99 {
				t.Errorf("node %s: batch ingest p99 = %.3fs, SLO %.1fs", id, p99, sloBatchP99)
			}
			if p99, ok := HistogramQuantile(fams, "rockhopper_fleet_replication_wait_seconds",
				nil, 0.99); ok && p99 > sloReplP99 {
				t.Errorf("node %s: replication wait p99 = %.3fs, SLO %.1fs", id, p99, sloReplP99)
			}
		}
		// With every request acknowledged, no follower may still lag.
		if fam, ok := telemetry.Find(fams, "rockhopper_fleet_replication_lag_records"); ok {
			for _, s := range fam.Series {
				if s.Value != 0 {
					t.Errorf("node %s: follower %s still lags %v records after quiesce",
						id, s.Labels["peer"], s.Value)
				}
			}
		}
	}
}
