package fleettest

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/backend"
	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/store"
)

const (
	drillSeed   = 42
	drillVnodes = 16
	drillBatch  = 4
)

// TestFailoverDrillZeroAckedLoss is the failover drill matrix: for every
// store crash point, a two-node fleet ingests batches into the shard owner
// until an injected fault kills its durable store mid-ingest. The owner is
// then taken off the network and the surviving follower promoted. The
// invariant under test is the fleet's ack contract: every event the owner
// acknowledged with a 202 — and only those are tracked — must be served
// byte-identically (data and creation timestamp) by the promoted replica,
// and the promoted node must accept fresh writes for the absorbed shard.
func TestFailoverDrillZeroAckedLoss(t *testing.T) {
	points := []struct {
		point store.CrashPoint
		// fireAt is the 1-based hit count of the point at which the
		// injected fault fires: late enough that earlier batches were
		// acknowledged, so the drill has acked state to lose.
		fireAt int
	}{
		{store.CrashPreWrite, 7},
		{store.CrashMidRecord, 7},
		// The rename points live inside snapshot compaction; CompactEvery
		// below makes compaction run every few batches, and firing on the
		// second compaction leaves acked batches on both sides of a
		// completed snapshot.
		{store.CrashPreRename, 2},
		{store.CrashPostRename, 2},
	}
	for _, tc := range points {
		t.Run(tc.point.String(), func(t *testing.T) {
			runFailoverDrill(t, tc.point, tc.fireAt)
		})
	}
}

func runFailoverDrill(t *testing.T, point store.CrashPoint, fireAt int) {
	errInjected := fmt.Errorf("drill: injected fault at %s", point)
	var hits atomic.Int64
	cluster, err := NewCluster(func(string) string { return t.TempDir() }, ClusterOptions{
		IDs:           []string{"a", "b"},
		Replicas:      2,
		Vnodes:        drillVnodes,
		Seed:          drillSeed,
		StoreSecret:   []byte("drill-secret"),
		ClusterSecret: "drill-cluster",
		CompactEvery:  8,
		RetryDelay:    2 * time.Millisecond,
		Hooks: map[string]func(store.CrashPoint) error{
			"a": func(p store.CrashPoint) error {
				if p == point && hits.Add(1) == int64(fireAt) {
					return errInjected
				}
				return nil
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	owner := cluster.Nodes["a"]
	sigs := drillSignatures(owner, "a", 400)

	// Ingest batches into the owner until the injected fault latches its
	// store. Only batches the owner answered with 202 enter the acked set —
	// those are the fleet's promise.
	ackedJobs := map[string]int{}
	crashed := false
	for i := 0; i*drillBatch+drillBatch <= len(sigs); i++ {
		job := fmt.Sprintf("drill-%03d", i)
		batch := sigs[i*drillBatch : (i+1)*drillBatch]
		status := postBatch(t, cluster, "a", job, batch)
		if status == http.StatusAccepted {
			ackedJobs[job] = len(batch)
			continue
		}
		if status >= 500 {
			crashed = true
			break
		}
		t.Fatalf("batch %s: unexpected status %d", job, status)
	}
	if !crashed {
		t.Fatalf("injected fault at %s never latched the owner's store (%d hits)", point, hits.Load())
	}
	if len(ackedJobs) == 0 {
		t.Fatalf("drill acked nothing before the %s crash: the matrix point fired too early", point)
	}

	// The fleet-visible death, then promotion of the surviving follower.
	cluster.KillNode("a")
	survivor := cluster.Nodes["b"]
	survivor.Promote("a")

	// Zero acknowledged-event loss: every event file under an acked job is
	// on the owner's disk (it was durable before the ack) and the promoted
	// replica serves the identical bytes and creation timestamp.
	ownerEvents := eventFiles(owner.Store())
	promotedEvents := eventFiles(survivor.Store())
	checked := 0
	for path, want := range ownerEvents {
		job := strings.SplitN(strings.TrimPrefix(path, "events/"), "/", 2)[0]
		if _, acked := ackedJobs[job]; !acked {
			continue
		}
		got, ok := promotedEvents[path]
		if !ok {
			t.Fatalf("%s: acked event %s lost in failover", point, path)
		}
		if !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("%s: acked event %s corrupted in failover: %d bytes vs %d", point, path, len(got.Data), len(want.Data))
		}
		if !got.Created.Equal(want.Created) {
			t.Fatalf("%s: acked event %s lost its timestamp: %v vs %v", point, path, got.Created, want.Created)
		}
		checked++
	}
	perJob := map[string]int{}
	for path := range ownerEvents {
		job := strings.SplitN(strings.TrimPrefix(path, "events/"), "/", 2)[0]
		perJob[job]++
	}
	for job, want := range ackedJobs {
		if perJob[job] != want {
			t.Fatalf("%s: acked job %s has %d event files on the owner, want %d — the ack outran durability",
				point, job, perJob[job], want)
		}
	}
	t.Logf("%s: %d acked batches, %d events verified byte-identical on the promoted replica", point, len(ackedJobs), checked)

	// The absorbed shard must keep taking writes: the promoted node now
	// owns the dead node's signatures and must ack without a dead peer in
	// its replication set.
	if status := postBatch(t, cluster, "b", "drill-post", sigs[:drillBatch]); status != http.StatusAccepted {
		t.Fatalf("%s: promoted node refused new ingest for the absorbed shard: status %d", point, status)
	}
}

// drillSignatures returns n signatures the given node owns under the drill
// ring parameters.
func drillSignatures(n interface {
	OwnerOf(string) (string, bool)
}, id string, max int) []string {
	var sigs []string
	for i := 0; len(sigs) < max && i < max*8; i++ {
		sig := fmt.Sprintf("drill-sig-%04d", i)
		if _, mine := n.OwnerOf(sig); mine {
			sigs = append(sigs, sig)
		}
	}
	return sigs
}

// postBatch posts one wholly-owned trace batch straight to a node and
// returns the HTTP status. Errors reaching the node at all count as 503 —
// from the drill's perspective an unreachable owner and a latched store are
// the same non-ack.
func postBatch(t *testing.T, c *Cluster, node, jobID string, sigs []string) int {
	t.Helper()
	space := sparksim.QuerySpace()
	traces := make([]flighting.Trace, 0, len(sigs))
	for _, sig := range sigs {
		traces = append(traces, flighting.Trace{
			QueryID: sig, Config: space.Default(), DataSize: 1, TimeMs: 100,
		})
	}
	var buf bytes.Buffer
	if err := flighting.WriteTraces(&buf, traces); err != nil {
		t.Fatal(err)
	}
	n := c.Nodes[node]
	tok := n.Store().Sign("events/", store.PermWrite, n.Backend().TokenTTL)
	req, err := http.NewRequest(http.MethodPost,
		c.Peers[node]+"/api/events/batch?user=drill&job_id="+jobID, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(backend.SASTokenHeader, tok)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return http.StatusServiceUnavailable
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode
}

// eventFiles maps event-file path to its stored entry for one store.
func eventFiles(s *store.DurableStore) map[string]store.Entry {
	out := make(map[string]store.Entry)
	for _, e := range s.Export() {
		if strings.HasPrefix(e.Path, "events/") {
			out[e.Path] = e
		}
	}
	return out
}
