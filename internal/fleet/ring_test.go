package fleet

import (
	"fmt"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/stats"
)

// ringNodes returns n synthetic node IDs.
func ringNodes(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("node-%02d", i)
	}
	return out
}

// ringKeys returns k synthetic signature keys.
func ringKeys(k int) []string {
	out := make([]string, k)
	for i := range out {
		out[i] = fmt.Sprintf("sig-%06d", i)
	}
	return out
}

// TestRingDeterministicPlacement: placement is a pure function of
// (member set, vnodes, seed) — independent of insertion order and of the
// process that computes it, because clients and nodes must agree with no
// coordination.
func TestRingDeterministicPlacement(t *testing.T) {
	t.Parallel()
	nodes, keys := ringNodes(7), ringKeys(5000)
	a := NewRing(64, 42)
	for _, n := range nodes {
		a.Add(n)
	}
	b := NewRing(64, 42)
	r := stats.NewRNG(1)
	perm := r.Perm(len(nodes))
	for _, i := range perm {
		b.Add(nodes[i])
	}
	for _, k := range keys {
		if ao, bo := a.Lookup(k), b.Lookup(k); ao != bo {
			t.Fatalf("placement differs for %q: %q vs %q (insertion order must not matter)", k, ao, bo)
		}
	}
	// A different seed must produce a genuinely different placement.
	c := NewRing(64, 43)
	for _, n := range nodes {
		c.Add(n)
	}
	moved := 0
	for _, k := range keys {
		if a.Lookup(k) != c.Lookup(k) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("seed has no effect on placement")
	}
}

// TestRingRebalanceBound: a membership change may move only the keys that
// have to move. On Remove, exactly the removed node's keys move (every
// other key keeps its owner); on Add, keys move only TO the new node. Both
// counts stay within K/N + ε, ε = K/(2N) for vnode placement variance.
func TestRingRebalanceBound(t *testing.T) {
	t.Parallel()
	const N, K = 10, 20000
	nodes, keys := ringNodes(N), ringKeys(K)
	ring := NewRing(0, 7)
	for _, n := range nodes {
		ring.Add(n)
	}
	before := make(map[string]string, K)
	for _, k := range keys {
		before[k] = ring.Lookup(k)
	}

	// Leave: node-03 departs permanently.
	ring.Remove("node-03")
	movedOnLeave := 0
	for _, k := range keys {
		now := ring.Lookup(k)
		if before[k] == "node-03" {
			movedOnLeave++
			if now == "node-03" {
				t.Fatalf("key %q still routes to the removed node", k)
			}
		} else if now != before[k] {
			t.Fatalf("collateral movement on leave: %q moved %q -> %q", k, before[k], now)
		}
	}
	bound := K/N + K/(2*N)
	if movedOnLeave > bound {
		t.Fatalf("leave moved %d keys, bound %d (K/N + ε)", movedOnLeave, bound)
	}

	// Join: a brand-new node arrives.
	ring.Add("node-99")
	movedOnJoin := 0
	for _, k := range keys {
		now := ring.Lookup(k)
		was := before[k]
		if was == "node-03" {
			continue // re-homed by the leave above
		}
		if now != was {
			movedOnJoin++
			if now != "node-99" {
				t.Fatalf("collateral movement on join: %q moved %q -> %q", k, was, now)
			}
		}
	}
	if movedOnJoin > bound {
		t.Fatalf("join moved %d keys, bound %d (K/N + ε)", movedOnJoin, bound)
	}
	if movedOnLeave == 0 || movedOnJoin == 0 {
		t.Fatalf("degenerate rebalance: leave=%d join=%d", movedOnLeave, movedOnJoin)
	}
}

// TestRingLoadSpread: with DefaultVnodes no node owns a pathological share.
func TestRingLoadSpread(t *testing.T) {
	t.Parallel()
	const N, K = 8, 40000
	ring := NewRing(0, 11)
	for _, n := range ringNodes(N) {
		ring.Add(n)
	}
	load := make(map[string]int, N)
	for _, k := range ringKeys(K) {
		load[ring.Lookup(k)]++
	}
	for _, n := range ring.Nodes() {
		share := load[n]
		if share == 0 {
			t.Fatalf("node %s owns no keys", n)
		}
		if share > 2*K/N {
			t.Fatalf("node %s owns %d of %d keys (> 2x fair share)", n, share, K)
		}
	}
}

// TestRingLookupN: replica sets are distinct nodes, owner first, and agree
// with Lookup.
func TestRingLookupN(t *testing.T) {
	t.Parallel()
	ring := NewRing(32, 5)
	for _, n := range ringNodes(5) {
		ring.Add(n)
	}
	for _, k := range ringKeys(500) {
		set := ring.LookupN(k, 3)
		if len(set) != 3 {
			t.Fatalf("LookupN(%q, 3) = %v", k, set)
		}
		if set[0] != ring.Lookup(k) {
			t.Fatalf("LookupN head %q != Lookup %q", set[0], ring.Lookup(k))
		}
		seen := map[string]bool{}
		for _, n := range set {
			if seen[n] {
				t.Fatalf("duplicate node in replica set %v", set)
			}
			seen[n] = true
		}
	}
	if got := ring.LookupN("k", 99); len(got) != 5 {
		t.Fatalf("LookupN beyond fleet size = %v, want all 5 members", got)
	}
}

// FuzzRingLookup: for arbitrary keys and membership mutations the ring
// never panics and Lookup always returns a current member.
func FuzzRingLookup(f *testing.F) {
	f.Add("sig-1", uint8(3), uint64(42))
	f.Add("", uint8(1), uint64(0))
	f.Add("a/very/long\xff\x00key", uint8(9), uint64(1<<63))
	f.Fuzz(func(t *testing.T, key string, n uint8, seed uint64) {
		members := int(n%16) + 1
		ring := NewRing(int(n%8)*16, seed) // vnodes 0 (default) .. 112
		for _, id := range ringNodes(members) {
			ring.Add(id)
		}
		// Churn: remove one member, re-add it, and add a stranger.
		ring.Remove(fmt.Sprintf("node-%02d", int(seed)%members))
		ring.Add("node-zz")
		live := map[string]bool{}
		for _, id := range ring.Nodes() {
			live[id] = true
		}
		owner := ring.Lookup(key)
		if !live[owner] {
			t.Fatalf("Lookup(%q) = %q, not a live member of %v", key, owner, ring.Nodes())
		}
		for _, id := range ring.LookupN(key, members) {
			if !live[id] {
				t.Fatalf("LookupN(%q) includes dead node %q", key, id)
			}
		}
	})
}
