package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/resilience"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

var testSecret = []byte("fleet-test-secret")

// openReplicated opens an owner store whose OnAppend tap feeds a new
// replicator built with opts.
func openReplicated(t *testing.T, opts ReplicatorOptions) (*store.DurableStore, *Replicator) {
	t.Helper()
	var repl *Replicator
	owner, err := store.OpenDurable(t.TempDir(), testSecret, store.DurableOptions{
		OnAppend: func(seq uint64, frame []byte, sc telemetry.SpanContext) { repl.Observe(seq, frame, sc) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { owner.Close() })
	repl = NewReplicator(owner, opts)
	return owner, repl
}

func openFollower(t *testing.T) *store.DurableStore {
	t.Helper()
	f, err := store.OpenDurable(t.TempDir(), testSecret, store.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// wantSameState asserts two stores expose byte-identical object state.
func wantSameState(t *testing.T, label string, a, b *store.DurableStore) {
	t.Helper()
	ea, eb := a.Export(), b.Export()
	sort.Slice(ea, func(i, j int) bool { return ea[i].Path < ea[j].Path })
	sort.Slice(eb, func(i, j int) bool { return eb[i].Path < eb[j].Path })
	if len(ea) != len(eb) {
		t.Fatalf("%s: %d objects vs %d", label, len(ea), len(eb))
	}
	for i := range ea {
		if ea[i].Path != eb[i].Path {
			t.Fatalf("%s: path %q vs %q", label, ea[i].Path, eb[i].Path)
		}
		if !bytes.Equal(ea[i].Data, eb[i].Data) {
			t.Fatalf("%s: %s: data differs", label, ea[i].Path)
		}
		if !ea[i].Created.Equal(eb[i].Created) {
			t.Fatalf("%s: %s: created %v vs %v", label, ea[i].Path, ea[i].Created, eb[i].Created)
		}
	}
}

func waitCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestReplicatorShipsToFollowers(t *testing.T) {
	owner, repl := openReplicated(t, ReplicatorOptions{})
	f1, f2 := openFollower(t), openFollower(t)
	repl.AddPeer("f1", StorePeer{Store: f1})
	repl.AddPeer("f2", StorePeer{Store: f2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	repl.Start(ctx)

	for i := 0; i < 40; i++ {
		owner.PutInternal(fmt.Sprintf("events/sig-%03d", i), []byte(fmt.Sprintf("payload-%d", i)))
	}
	if err := repl.WaitReplicated(waitCtx(t), owner.Seq()); err != nil {
		t.Fatalf("WaitReplicated: %v", err)
	}
	wantSameState(t, "f1", owner, f1)
	wantSameState(t, "f2", owner, f2)
	for id, lag := range repl.Lag() {
		if lag != 0 {
			t.Fatalf("peer %s lag = %d after full ack", id, lag)
		}
	}

	// A second round exercises the frame path (the first round may be
	// absorbed whole by the initial snapshot catch-up).
	for i := 0; i < 10; i++ {
		owner.PutInternal(fmt.Sprintf("events/late-%03d", i), []byte("late"))
	}
	if err := repl.WaitReplicated(waitCtx(t), owner.Seq()); err != nil {
		t.Fatalf("WaitReplicated round 2: %v", err)
	}
	wantSameState(t, "f1 round 2", owner, f1)
	wantSameState(t, "f2 round 2", owner, f2)
}

// flakyPeer fails the first fail calls of each kind, then delegates.
type flakyPeer struct {
	inner Peer
	mu    sync.Mutex
	fail  int
}

func (p *flakyPeer) Replicate(ctx context.Context, frames []byte) (uint64, error) {
	p.mu.Lock()
	if p.fail > 0 {
		p.fail--
		p.mu.Unlock()
		return 0, errors.New("transient transport failure")
	}
	p.mu.Unlock()
	return p.inner.Replicate(ctx, frames)
}

func (p *flakyPeer) InstallSnapshot(ctx context.Context, image []byte) (uint64, error) {
	p.mu.Lock()
	if p.fail > 0 {
		p.fail--
		p.mu.Unlock()
		return 0, errors.New("transient transport failure")
	}
	p.mu.Unlock()
	return p.inner.InstallSnapshot(ctx, image)
}

func TestReplicatorRetriesTransientFailures(t *testing.T) {
	clock := resilience.NewFakeClock(time.Unix(0, 0))
	owner, repl := openReplicated(t, ReplicatorOptions{Clock: clock})
	f := openFollower(t)
	repl.AddPeer("f", &flakyPeer{inner: StorePeer{Store: f}, fail: 3})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	repl.Start(ctx)

	for i := 0; i < 20; i++ {
		owner.PutInternal(fmt.Sprintf("events/sig-%03d", i), []byte("x"))
	}
	if err := repl.WaitReplicated(waitCtx(t), owner.Seq()); err != nil {
		t.Fatalf("WaitReplicated: %v", err)
	}
	wantSameState(t, "after retries", owner, f)
}

// gatedPeer blocks every call until release is closed.
type gatedPeer struct {
	inner   Peer
	release chan struct{}
}

func (p *gatedPeer) Replicate(ctx context.Context, frames []byte) (uint64, error) {
	select {
	case <-p.release:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	return p.inner.Replicate(ctx, frames)
}

func (p *gatedPeer) InstallSnapshot(ctx context.Context, image []byte) (uint64, error) {
	select {
	case <-p.release:
	case <-ctx.Done():
		return 0, ctx.Err()
	}
	return p.inner.InstallSnapshot(ctx, image)
}

func TestReplicatorOverflowFallsBackToSnapshot(t *testing.T) {
	reg := telemetry.NewRegistry()
	owner, repl := openReplicated(t, ReplicatorOptions{Metrics: reg, MaxBuffer: 256})
	f := openFollower(t)
	gate := &gatedPeer{inner: StorePeer{Store: f}, release: make(chan struct{})}
	repl.AddPeer("f", gate)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	repl.Start(ctx)

	// Far more than 256 bytes of frames while the peer is unreachable: the
	// buffer is dropped and the peer queued for snapshot catch-up.
	for i := 0; i < 100; i++ {
		owner.PutInternal(fmt.Sprintf("events/sig-%03d", i), bytes.Repeat([]byte("v"), 64))
	}
	close(gate.release)
	if err := repl.WaitReplicated(waitCtx(t), owner.Seq()); err != nil {
		t.Fatalf("WaitReplicated: %v", err)
	}
	wantSameState(t, "after overflow", owner, f)

	rec := httptest.NewRecorder()
	reg.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	fams, err := telemetry.ParseText(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	catchups := 0.0
	for _, fam := range fams {
		if fam.Name != "rockhopper_fleet_snapshot_catchups_total" {
			continue
		}
		for _, s := range fam.Series {
			if s.Labels["peer"] == "f" {
				catchups = s.Value
			}
		}
	}
	if catchups < 1 {
		t.Fatalf("snapshot catch-ups = %v, want >= 1", catchups)
	}
}

func TestWaitReplicatedCancelAndStop(t *testing.T) {
	owner, repl := openReplicated(t, ReplicatorOptions{})
	f := openFollower(t)
	gate := &gatedPeer{inner: StorePeer{Store: f}, release: make(chan struct{})}
	repl.AddPeer("stuck", gate)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	repl.Start(ctx)

	owner.PutInternal("events/sig", []byte("x"))

	short, shortCancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer shortCancel()
	if err := repl.WaitReplicated(short, owner.Seq()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitReplicated with stuck peer = %v, want deadline exceeded", err)
	}

	repl.Stop()
	if err := repl.WaitReplicated(context.Background(), owner.Seq()); !errors.Is(err, ErrReplicatorStopped) {
		t.Fatalf("WaitReplicated after Stop = %v, want ErrReplicatorStopped", err)
	}
}

func TestWaitReplicatedNoPeers(t *testing.T) {
	owner, repl := openReplicated(t, ReplicatorOptions{})
	owner.PutInternal("events/sig", []byte("x"))
	if err := repl.WaitReplicated(context.Background(), owner.Seq()); err != nil {
		t.Fatalf("single-node WaitReplicated = %v, want nil", err)
	}
}
