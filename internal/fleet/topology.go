// Topology: the consistent-hash ring plus liveness and promotion. Routing
// must keep working while a node is down WITHOUT re-hashing — the dead
// node's keys live on its followers, nowhere else — so a transient death
// routes every key the dead node owned to its first live successor in the
// cyclic node-ID order (the promotion rule), and only a permanent Remove
// moves placement. Every party (backend nodes, clients, drills) computes
// the same answer from the same membership + liveness facts.
package fleet

import (
	"sort"
	"sync"
)

// Topology is the synchronized fleet view: ring placement, replica fan-out,
// and per-node liveness. All methods are safe for concurrent use.
type Topology struct {
	mu       sync.RWMutex
	ring     *Ring
	replicas int
	order    []string // sorted node IDs: the promotion/follower chain
	down     map[string]bool
}

// NewTopology builds a topology over the given members. replicas is the
// replica-set size including the owner (clamped to [1, len(nodes)]);
// vnodes and seed parameterize the ring exactly as NewRing does.
func NewTopology(nodes []string, replicas, vnodes int, seed uint64) *Topology {
	ring := NewRing(vnodes, seed)
	for _, n := range nodes {
		ring.Add(n)
	}
	if replicas < 1 {
		replicas = 1
	}
	if replicas > len(ring.nodes) {
		replicas = len(ring.nodes)
	}
	return &Topology{
		ring:     ring,
		replicas: replicas,
		order:    ring.Nodes(),
		down:     make(map[string]bool),
	}
}

// Replicas returns the replica-set size (owner included).
func (t *Topology) Replicas() int { return t.replicas }

// Nodes returns the member IDs, sorted.
func (t *Topology) Nodes() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]string(nil), t.order...)
}

// HomeOwner returns the ring owner of a signature, ignoring liveness — the
// node that owns the shard whenever it is up.
func (t *Topology) HomeOwner(signature string) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.ring.Lookup(signature)
}

// Owner returns the live node currently serving a signature: the home
// owner when it is up, otherwise the promotion walk — the first live node
// in cyclic node-ID order after it. Inside the replica set that successor
// holds the shard's replicated data; past it (multiple simultaneous
// deaths) routing still lands on a live node, which serves degraded
// (cold-start) state. Returns "" when every node is down.
func (t *Topology) Owner(signature string) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.liveFromLocked(t.ring.Lookup(signature))
}

// liveFromLocked walks the cyclic successor chain starting at node until a
// live member is found.
func (t *Topology) liveFromLocked(node string) string {
	if node == "" {
		return ""
	}
	i := sort.SearchStrings(t.order, node)
	for k := 0; k < len(t.order); k++ {
		n := t.order[(i+k)%len(t.order)]
		if !t.down[n] {
			return n
		}
	}
	return ""
}

// FollowersOf returns the nodes replicating node's shard: its replicas-1
// cyclic successors in node-ID order. The chain is a pure function of the
// membership list, so owners, followers, and clients agree on it without
// coordination.
func (t *Topology) FollowersOf(node string) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return followers(t.order, node, t.replicas-1)
}

// followers returns up to n cyclic successors of node in the sorted order.
func followers(order []string, node string, n int) []string {
	i := sort.SearchStrings(order, node)
	if i >= len(order) || order[i] != node {
		return nil
	}
	if n > len(order)-1 {
		n = len(order) - 1
	}
	out := make([]string, 0, n)
	for k := 1; k <= n; k++ {
		out = append(out, order[(i+k)%len(order)])
	}
	return out
}

// ReplicaSet returns the nodes holding a signature's shard: the home owner
// followed by its followers.
func (t *Topology) ReplicaSet(signature string) []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	home := t.ring.Lookup(signature)
	if home == "" {
		return nil
	}
	return append([]string{home}, followers(t.order, home, t.replicas-1)...)
}

// MarkDead records a node as down and returns the promotion target its
// keys now route to ("" when the whole fleet is down). changed is false
// when the node was already marked.
func (t *Topology) MarkDead(node string) (promoted string, changed bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.down[node] {
		return t.liveFromLocked(node), false
	}
	t.down[node] = true
	return t.liveFromLocked(node), true
}

// MarkLive clears a node's down mark; its keys route home again. Reports
// whether the mark changed.
func (t *Topology) MarkLive(node string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.down[node] {
		return false
	}
	delete(t.down, node)
	return true
}

// Alive reports whether a node is currently considered up.
func (t *Topology) Alive(node string) bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	i := sort.SearchStrings(t.order, node)
	return i < len(t.order) && t.order[i] == node && !t.down[node]
}
