package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/backend"
	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

const testClusterSecret = "fleet-cluster-secret"

// handlerSwap lets an httptest server start before the node whose handler
// it will serve exists (the node needs every peer URL up front).
type handlerSwap struct{ h atomic.Value }

func (s *handlerSwap) set(h http.Handler) { s.h.Store(h) }

func (s *handlerSwap) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h, ok := s.h.Load().(http.Handler); ok {
		h.ServeHTTP(w, r)
		return
	}
	http.Error(w, "node not ready", http.StatusServiceUnavailable)
}

// testFleet is an n-node HTTP fleet on loopback.
type testFleet struct {
	nodes   map[string]*Node
	servers map[string]*httptest.Server
	peers   map[string]string
}

func newTestFleet(t *testing.T, ids []string, replicas int, tweak func(id string, opts *NodeOptions)) *testFleet {
	t.Helper()
	f := &testFleet{
		nodes:   make(map[string]*Node),
		servers: make(map[string]*httptest.Server),
		peers:   make(map[string]string),
	}
	swaps := make(map[string]*handlerSwap)
	for _, id := range ids {
		sw := &handlerSwap{}
		srv := httptest.NewServer(sw)
		swaps[id] = sw
		f.servers[id] = srv
		f.peers[id] = srv.URL
	}
	ctx, cancel := context.WithCancel(context.Background())
	for _, id := range ids {
		opts := NodeOptions{
			ID:            id,
			Peers:         f.peers,
			Replicas:      replicas,
			Vnodes:        16,
			Seed:          42,
			Space:         sparksim.QuerySpace(),
			DataDir:       t.TempDir(),
			StoreSecret:   testSecret,
			ClusterSecret: testClusterSecret,
			Metrics:       telemetry.NewRegistry(),
			NoSync:        true,
			RetryDelay:    2 * time.Millisecond,
		}
		if tweak != nil {
			tweak(id, &opts)
		}
		n, err := NewNode(opts)
		if err != nil {
			t.Fatalf("NewNode(%s): %v", id, err)
		}
		f.nodes[id] = n
		swaps[id].set(n.Handler())
	}
	for _, n := range f.nodes {
		n.Start(ctx)
	}
	t.Cleanup(func() {
		cancel()
		for _, srv := range f.servers {
			srv.Close()
		}
		for _, n := range f.nodes {
			n.Close()
		}
	})
	return f
}

// sigOwnedBy finds a signature the given node owns under the fleet's seed.
func sigOwnedBy(t *testing.T, f *testFleet, node string, skip map[string]bool) string {
	t.Helper()
	topo := f.nodes[node].Topology()
	for i := 0; i < 10000; i++ {
		sig := fmt.Sprintf("sig-%04d", i)
		if skip[sig] {
			continue
		}
		if topo.Owner(sig) == node {
			return sig
		}
	}
	t.Fatalf("no signature owned by %s in 10000 candidates", node)
	return ""
}

// postEvent ingests one trace for sig at the given node.
func postEvent(t *testing.T, f *testFleet, node, sig, job string) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	space := sparksim.QuerySpace()
	if err := flighting.WriteTraces(&buf, []flighting.Trace{{
		QueryID: sig, Config: space.Default(), DataSize: 1, TimeMs: 100,
	}}); err != nil {
		t.Fatal(err)
	}
	n := f.nodes[node]
	tok := n.Store().Sign("events/", store.PermWrite, n.Backend().TokenTTL)
	url := fmt.Sprintf("%s/api/events?user=u&signature=%s&job_id=%s", f.peers[node], sig, job)
	req, err := http.NewRequest(http.MethodPost, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(backend.SASTokenHeader, tok)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// eventsOf filters a store export down to ingested event objects.
func eventsOf(s *store.DurableStore) []store.Entry {
	var out []store.Entry
	for _, e := range s.Export() {
		if len(e.Path) >= 7 && e.Path[:7] == "events/" {
			out = append(out, e)
		}
	}
	return out
}

func TestNodeMisrouteBouncesAndReplicationGatesAck(t *testing.T) {
	f := newTestFleet(t, []string{"a", "b"}, 2, nil)
	sig := sigOwnedBy(t, f, "a", nil)

	// Misrouted ingest bounces with 421 and names the owner.
	resp := postEvent(t, f, "b", sig, "job-1")
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("misrouted ingest status = %d, want 421", resp.StatusCode)
	}
	var mr backend.MisroutedResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.Owner != f.peers["a"] {
		t.Fatalf("misroute owner = %q, want %q", mr.Owner, f.peers["a"])
	}
	if mr.Signature != sig {
		t.Fatalf("misroute signature = %q, want %q", mr.Signature, sig)
	}
	if len(eventsOf(f.nodes["b"].Store())) != 0 {
		t.Fatal("misrouted event must not be persisted")
	}

	// Correctly routed ingest is accepted, and by the time the 202 lands
	// the follower's replica already holds the event byte-identically.
	resp = postEvent(t, f, "a", sig, "job-1")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("owner ingest status = %d, want 202", resp.StatusCode)
	}
	ownerEvents := eventsOf(f.nodes["a"].Store())
	if len(ownerEvents) != 1 {
		t.Fatalf("owner persisted %d events, want 1", len(ownerEvents))
	}
	replica := f.nodes["b"].replicas["a"]
	if replica == nil {
		t.Fatal("node b does not hold a replica store for a")
	}
	replicaEvents := eventsOf(replica)
	if len(replicaEvents) != 1 {
		t.Fatalf("replica holds %d events at ack time, want 1", len(replicaEvents))
	}
	if replicaEvents[0].Path != ownerEvents[0].Path {
		t.Fatalf("replica path %q vs owner %q", replicaEvents[0].Path, ownerEvents[0].Path)
	}
	if !bytes.Equal(replicaEvents[0].Data, ownerEvents[0].Data) {
		t.Fatal("replica event bytes differ from owner's")
	}
	if !replicaEvents[0].Created.Equal(ownerEvents[0].Created) {
		t.Fatal("replica event timestamp differs from owner's")
	}
}

func TestNodePromoteServesDeadOwnersData(t *testing.T) {
	f := newTestFleet(t, []string{"a", "b"}, 2, nil)

	// Ingest three signatures owned by a; every 202 is replicated to b.
	used := make(map[string]bool)
	var sigs []string
	for i := 0; i < 3; i++ {
		sig := sigOwnedBy(t, f, "a", used)
		used[sig] = true
		sigs = append(sigs, sig)
		if resp := postEvent(t, f, "a", sig, "job-1"); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("ingest %s: status = %d", sig, resp.StatusCode)
		}
	}
	deadEvents := eventsOf(f.nodes["a"].Store())
	if len(deadEvents) != 3 {
		t.Fatalf("owner persisted %d events, want 3", len(deadEvents))
	}

	// Kill a and promote b through the operator endpoint.
	f.servers["a"].Close()
	req, _ := http.NewRequest(http.MethodPost, f.peers["b"]+"/api/fleet/promote?node=a", nil)
	req.Header.Set(backend.ClusterTokenHeader, testClusterSecret)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var st statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Promoted) != 1 || st.Promoted[0] != "a" {
		t.Fatalf("promoted = %v, want [a]", st.Promoted)
	}

	// b now owns the dead node's signatures and serves every acknowledged
	// event byte-identically from its absorbed replica.
	for _, sig := range sigs {
		if owner := f.nodes["b"].Topology().Owner(sig); owner != "b" {
			t.Fatalf("after promote, owner(%s) = %q, want b", sig, owner)
		}
	}
	absorbed := make(map[string]store.Entry)
	for _, e := range eventsOf(f.nodes["b"].Store()) {
		absorbed[e.Path] = e
	}
	for _, want := range deadEvents {
		got, ok := absorbed[want.Path]
		if !ok {
			t.Fatalf("acknowledged event %s lost after promote", want.Path)
		}
		if !bytes.Equal(got.Data, want.Data) {
			t.Fatalf("event %s: bytes differ after promote", want.Path)
		}
		if !got.Created.Equal(want.Created) {
			t.Fatalf("event %s: timestamp differs after promote", want.Path)
		}
	}

	// New ingest for an absorbed signature lands on b directly — and does
	// not block on the dead follower's acknowledgement.
	if resp := postEvent(t, f, "b", sigs[0], "job-2"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-promote ingest status = %d, want 202", resp.StatusCode)
	}
}

func TestNodeHeartbeatPromotesAfterOwnerDeath(t *testing.T) {
	f := newTestFleet(t, []string{"a", "b"}, 2, func(id string, opts *NodeOptions) {
		opts.HeartbeatInterval = 5 * time.Millisecond
		opts.HeartbeatFailures = 2
	})
	sig := sigOwnedBy(t, f, "a", nil)
	if resp := postEvent(t, f, "a", sig, "job-1"); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}

	f.servers["a"].Close()
	deadline := time.Now().Add(5 * time.Second)
	for f.nodes["b"].Topology().Owner(sig) != "b" {
		if time.Now().After(deadline) {
			t.Fatal("heartbeat never promoted b after owner death")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(eventsOf(f.nodes["b"].Store())) == 0 {
		t.Fatal("promoted node absorbed no events")
	}
}

func TestNodeFleetEndpointsRequireClusterToken(t *testing.T) {
	f := newTestFleet(t, []string{"a", "b"}, 2, nil)
	req, _ := http.NewRequest(http.MethodPost, f.peers["b"]+"/api/fleet/promote?node=a", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated promote status = %d, want 401", resp.StatusCode)
	}
}
