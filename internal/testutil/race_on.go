//go:build race

package testutil

// RaceEnabled reports whether the race detector is compiled in. Allocation
// budget tests skip under -race: the detector instruments allocations and
// the budgets would measure it, not the code.
const RaceEnabled = true
