// Package testutil holds small helpers shared by the repository's tests:
// build-tag detection for the race detector (allocation budgets are
// meaningless under its instrumentation) and nothing else — it must stay
// dependency-free so any package can import it.
package testutil
