package backend

import (
	"bytes"
	"net/http"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

// recurringBatch runs one fixed, recurring config set (a production
// signature re-executes the same tuner-proposed neighborhood run after run)
// with fresh execution noise per runSeed. Against a recurring workload the
// serving model interpolates, so residuals measure noise and drift — not
// the generalization error that random unseen configs would inject.
func recurringBatch(n int, runSeed uint64) []flighting.Trace {
	space := sparksim.QuerySpace()
	e := sparksim.NewEngine(space)
	q := workloads.NewGenerator(7).Query(workloads.TPCDS, 2)
	cfgRNG := stats.NewRNG(99)
	cfgs := make([]sparksim.Config, n)
	for i := range cfgs {
		cfgs[i] = space.Random(cfgRNG)
	}
	r := stats.NewRNG(runSeed)
	out := make([]flighting.Trace, 0, n)
	for i := 0; i < n; i++ {
		o := e.Run(q, cfgs[i], 1, r, noise.Low)
		out = append(out, flighting.Trace{QueryID: "s", Config: o.Config, DataSize: o.DataSize, TimeMs: o.Time})
	}
	return out
}

// postDriftBatch ships one explicit trace batch for u/s under the given job ID
// and waits for the retrain it triggers.
func postDriftBatch(t *testing.T, srv *Server, hs string, jobID string, traces []flighting.Trace) {
	t.Helper()
	tok := srv.Store.Sign("events/", store.PermWrite, srv.TokenTTL)
	var buf bytes.Buffer
	if err := flighting.WriteTraces(&buf, traces); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", hs+"/api/events?user=u&signature=s&job_id="+jobID, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(SASTokenHeader, tok)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	srv.Flush()
}

// driftGauges scrapes the signature's drift state and score series.
func driftGauges(t *testing.T, url string) (state, score float64) {
	t.Helper()
	fams := scrape(t, url)
	for _, name := range []string{"rockhopper_signature_drift_state", "rockhopper_signature_drift_score"} {
		fam, ok := telemetry.Find(fams, name)
		if !ok {
			t.Fatalf("%s missing from scrape", name)
		}
		for _, s := range fam.Series {
			if s.Labels["user"] != "u" || s.Labels["signature"] != "s" {
				continue
			}
			if name == "rockhopper_signature_drift_state" {
				state = s.Value
			} else {
				score = s.Value
			}
		}
	}
	return state, score
}

// TestDriftGaugeFlipsOnCostShift is the end-to-end tuning-health drill: a
// stationary signature must hold rockhopper_signature_drift_state at 0
// through repeated retrains (zero false positives), and an injected
// simulator cost shift — every run 60% slower than the serving model's
// world — must flip the state gauge within 20 shifted runs.
func TestDriftGaugeFlipsOnCostShift(t *testing.T) {
	srv, hs := newServer(t)

	// Batch A fits the first serving model; there is no model to score
	// against yet, so its traces are consumed unscored.
	postDriftBatch(t, srv, hs.URL, "ja", recurringBatch(8, 1))

	// Batch B is drawn from the same stationary workload: its residuals
	// against the batch-A model are the detector's baseline. No drift.
	postDriftBatch(t, srv, hs.URL, "jb", recurringBatch(8, 2))
	if drifting, score := srv.DriftState("u", "s"); drifting {
		t.Fatalf("stationary signature reports drift (score %.3f) — false positive", score)
	}
	if state, _ := driftGauges(t, hs.URL); state != 0 {
		t.Fatalf("stationary drift_state gauge = %v, want 0", state)
	}

	// Batch C injects the cost shift: the same configs now run 60% slower
	// than the world the serving model was fit on.
	shifted := recurringBatch(16, 3)
	if len(shifted) > 20 {
		t.Fatalf("drill uses %d shifted runs, acceptance bound is 20", len(shifted))
	}
	for i := range shifted {
		shifted[i].TimeMs *= 1.6
	}
	postDriftBatch(t, srv, hs.URL, "jc", shifted)

	drifting, score := srv.DriftState("u", "s")
	if !drifting {
		t.Fatalf("injected 1.6x cost shift did not trip drift within %d runs (score %.3f)", len(shifted), score)
	}
	if score <= 0 {
		t.Errorf("tripped detector exports score %.3f, want > 0", score)
	}
	state, gscore := driftGauges(t, hs.URL)
	if state != 1 {
		t.Errorf("drift_state gauge = %v, want 1 after the shift", state)
	}
	if gscore != score {
		t.Errorf("drift_score gauge = %v, DriftState score = %v — must agree", gscore, score)
	}
}

// TestDriftStationarySignaturesStayClean retrains one signature repeatedly
// on fresh draws from an unchanged workload — the detector sees a long
// residual stream and must never trip.
func TestDriftStationarySignaturesStayClean(t *testing.T) {
	srv, hs := newServer(t)
	jobs := []string{"j0", "j1", "j2", "j3", "j4"}
	for i, j := range jobs {
		postDriftBatch(t, srv, hs.URL, j, recurringBatch(8, uint64(10+i)))
		if drifting, score := srv.DriftState("u", "s"); drifting {
			t.Fatalf("stationary retrain %d tripped drift (score %.3f)", i+1, score)
		}
	}
	if state, _ := driftGauges(t, hs.URL); state != 0 {
		t.Fatalf("stationary drift_state gauge = %v, want 0", state)
	}
}
