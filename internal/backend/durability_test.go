package backend

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/store"
)

// newDurableServer builds a backend over a real durable store whose WAL
// fails on the n-th append, via the store's own crash-point injector.
func newDurableServer(t *testing.T, failOnAppend int) (*Server, *httptest.Server) {
	t.Helper()
	appends := 0
	ds, err := store.OpenDurable(t.TempDir(), []byte("key"), store.DurableOptions{
		NoSync: true,
		Hooks: func(p store.CrashPoint) error {
			if p != store.CrashPreWrite {
				return nil
			}
			appends++
			if appends == failOnAppend {
				return errors.New("disk gone")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(sparksim.QuerySpace(), ds, secret, 1)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
		_ = ds.Close() // already down; the latched error is expected
	})
	return srv, hs
}

func postEvents(t *testing.T, srv *Server, hs *httptest.Server) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	space := sparksim.QuerySpace()
	if err := flighting.WriteTraces(&buf, []flighting.Trace{{
		QueryID: "s", Config: space.Default(), DataSize: 1, TimeMs: 1,
	}}); err != nil {
		t.Fatal(err)
	}
	tok := srv.Store.Sign("events/", store.PermWrite, srv.TokenTTL)
	req, err := http.NewRequest("POST", hs.URL+"/api/events?user=u&signature=s&job_id=j", &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(SASTokenHeader, tok)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestIngestSurfacesFailedIndexCommit: handleEvents stages the event file
// (WAL append 1) and commits the index entry via PutInternal (WAL append
// 2). PutInternal has no error slot, so when the second append fails the
// handler must notice the latched store error and answer 5xx — a 202 here
// would acknowledge an ingest whose index entry never persisted, leaving
// the event file to be reaped as an orphan.
func TestIngestSurfacesFailedIndexCommit(t *testing.T) {
	srv, hs := newDurableServer(t, 2)
	resp := postEvents(t, srv, hs)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("ingest with failed index commit: status = %d; want 500", resp.StatusCode)
	}

	// The failure is latched: health must report the store down, not "ok".
	hresp, err := http.Get(hs.URL + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h HealthReport
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "down" || h.StoreError == "" {
		t.Fatalf("health after durability failure = %q (store_error=%q); want down with a cause", h.Status, h.StoreError)
	}
}

// TestHealthyDurableIngestStillAccepted pins the non-failure path: with no
// injected fault the same ingest is a 202 and health stays "ok", so the
// phase-2 check cannot have introduced false rejections.
func TestHealthyDurableIngestStillAccepted(t *testing.T) {
	srv, hs := newDurableServer(t, 0) // never fails
	resp := postEvents(t, srv, hs)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("healthy ingest: status = %d; want 202", resp.StatusCode)
	}
	hresp, err := http.Get(hs.URL + "/api/health")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h HealthReport
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.StoreError != "" {
		t.Fatalf("healthy durable backend reports %q (store_error=%q)", h.Status, h.StoreError)
	}
}
