package backend

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// EndpointHealth is one endpoint's request/error accounting.
type EndpointHealth struct {
	// Requests counts every request routed to the endpoint.
	Requests int64 `json:"requests"`
	// ClientErrors counts 4xx responses (caller mistakes, auth).
	ClientErrors int64 `json:"client_errors"`
	// ServerErrors counts 5xx responses.
	ServerErrors int64 `json:"server_errors"`
	// Timeouts counts requests whose deadline expired while handling.
	Timeouts int64 `json:"timeouts"`
	// LastError is the most recent non-2xx response body (truncated).
	LastError string `json:"last_error,omitempty"`
	// LastErrorUnixMs timestamps LastError.
	LastErrorUnixMs int64 `json:"last_error_unix_ms,omitempty"`
}

// HealthReport is the GET /api/health payload: structured per-endpoint
// error accounting plus queue state, so operators (and tests) can see
// degradation instead of inferring it from client-side symptoms.
type HealthReport struct {
	// Status is "ok", "degraded" (a server error in the last minute), or
	// "down" (the durable store has latched a durability failure and
	// refuses mutations).
	Status string `json:"status"`
	// StoreError is the latched durability failure when Status is "down".
	StoreError string `json:"store_error,omitempty"`
	// UptimeSeconds since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// PendingUpdates is the Model Updater queue depth.
	PendingUpdates int `json:"pending_updates"`
	// Endpoints maps endpoint name to its accounting.
	Endpoints map[string]EndpointHealth `json:"endpoints"`
}

// serverMetrics aggregates per-endpoint accounting under one lock; request
// handling only touches it twice per request (counter + outcome).
type serverMetrics struct {
	start time.Time

	mu        sync.Mutex
	endpoints map[string]*EndpointHealth
	lastErrAt time.Time
}

func (m *serverMetrics) observe(name string, status int, errBody string, timedOut bool, now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.endpoints == nil {
		m.endpoints = make(map[string]*EndpointHealth)
	}
	e := m.endpoints[name]
	if e == nil {
		e = &EndpointHealth{}
		m.endpoints[name] = e
	}
	e.Requests++
	if timedOut {
		e.Timeouts++
	}
	switch {
	case status >= 500:
		e.ServerErrors++
		m.lastErrAt = now
	case status >= 400:
		e.ClientErrors++
	default:
		return
	}
	if len(errBody) > 256 {
		errBody = errBody[:256]
	}
	e.LastError = errBody
	e.LastErrorUnixMs = now.UnixMilli()
}

func (m *serverMetrics) report(pending int, now time.Time) HealthReport {
	m.mu.Lock()
	defer m.mu.Unlock()
	rep := HealthReport{
		Status:         "ok",
		UptimeSeconds:  now.Sub(m.start).Seconds(),
		PendingUpdates: pending,
		Endpoints:      make(map[string]EndpointHealth, len(m.endpoints)),
	}
	if !m.lastErrAt.IsZero() && now.Sub(m.lastErrAt) < time.Minute {
		rep.Status = "degraded"
	}
	for name, e := range m.endpoints {
		rep.Endpoints[name] = *e
	}
	return rep
}

// statusRecorder captures the response code and error body for accounting.
type statusRecorder struct {
	http.ResponseWriter
	code    int
	errBody []byte
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code >= 400 && len(r.errBody) < 256 {
		r.errBody = append(r.errBody, b[:min(len(b), 256-len(r.errBody))]...)
	}
	return r.ResponseWriter.Write(b)
}

// instrument wraps a handler with the server's request deadline and feeds
// the per-endpoint accounting behind /api/health.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		cancel := func() {}
		if s.RequestTimeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, s.RequestTimeout)
		}
		defer cancel()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r.WithContext(ctx))
		s.metrics.observe(name, rec.code, string(rec.errBody), ctx.Err() != nil, s.clock().Now())
	}
}

// handleHealth serves the backend's health report. It is intentionally
// unauthenticated (load balancers and probes poll it) and read-only. A
// latched durable-store failure overrides the endpoint accounting: a
// backend whose store refuses mutations is "down", not merely degraded,
// even if no request has tripped over it yet.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	pending := s.pending
	s.mu.Unlock()
	rep := s.metrics.report(pending, s.clock().Now())
	if err := s.storeErr(); err != nil {
		rep.Status = "down"
		rep.StoreError = err.Error()
	}
	writeJSON(w, rep)
}
