package backend

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/flightrec"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// EndpointHealth is one endpoint's request/error accounting.
type EndpointHealth struct {
	// Requests counts every request routed to the endpoint.
	Requests int64 `json:"requests"`
	// ClientErrors counts 4xx responses (caller mistakes, auth).
	ClientErrors int64 `json:"client_errors"`
	// ServerErrors counts 5xx responses.
	ServerErrors int64 `json:"server_errors"`
	// Timeouts counts requests whose deadline expired while handling.
	Timeouts int64 `json:"timeouts"`
	// LastError is the most recent non-2xx response body (truncated).
	LastError string `json:"last_error,omitempty"`
	// LastErrorUnixMs timestamps LastError.
	LastErrorUnixMs int64 `json:"last_error_unix_ms,omitempty"`
}

// HealthReport is the GET /api/health payload: structured per-endpoint
// error accounting plus queue state, so operators (and tests) can see
// degradation instead of inferring it from client-side symptoms.
type HealthReport struct {
	// Status is "ok", "degraded" (a server error in the last minute), or
	// "down" (the durable store has latched a durability failure and
	// refuses mutations).
	Status string `json:"status"`
	// StoreError is the latched durability failure when Status is "down".
	StoreError string `json:"store_error,omitempty"`
	// UptimeSeconds since the server was constructed.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// PendingUpdates is the Model Updater queue depth.
	PendingUpdates int `json:"pending_updates"`
	// Endpoints maps endpoint name to its accounting.
	Endpoints map[string]EndpointHealth `json:"endpoints"`
}

// endpointError is the last non-2xx body for one endpoint — operator
// context that has no place in a numeric metrics registry.
type endpointError struct {
	body     string
	atUnixMs int64
}

// serverMetrics keeps only what the telemetry registry cannot: the uptime
// origin and last-error strings. The counts behind /api/health now live in
// the shared registry (rockhopper_http_requests_total and friends) so the
// health report and a /metrics scrape can never disagree.
type serverMetrics struct {
	start time.Time

	mu        sync.Mutex
	lastErr   map[string]*endpointError
	lastErrAt time.Time
}

// observe feeds one finished request into the registry instruments and the
// last-error bookkeeping. A valid sc pins the request's span identity as
// the latency bucket's exemplar, linking the scrape to the trace.
func (s *Server) observe(name string, status int, errBody string, timedOut bool, dur time.Duration, now time.Time, sc telemetry.SpanContext) {
	s.tele.requests.With(name, codeClass(status)).Inc()
	s.tele.latency.With(name).ObserveTraced(dur.Seconds(), sc)
	if timedOut {
		s.tele.timeouts.With(name).Inc()
	}
	if status < 400 {
		return
	}
	if len(errBody) > 256 {
		errBody = errBody[:256]
	}
	m := &s.metrics
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lastErr == nil {
		m.lastErr = make(map[string]*endpointError)
	}
	m.lastErr[name] = &endpointError{body: errBody, atUnixMs: now.UnixMilli()}
	if status >= 500 {
		m.lastErrAt = now
	}
}

// healthReport assembles the /api/health payload from the registry series
// plus the retained error strings.
func (s *Server) healthReport(pending int, now time.Time) HealthReport {
	eps := make(map[string]EndpointHealth)
	for _, sv := range s.tele.requests.Series() {
		name, class := sv.Labels[0], sv.Labels[1]
		e := eps[name]
		e.Requests += int64(sv.Value)
		switch class {
		case "4xx":
			e.ClientErrors += int64(sv.Value)
		case "5xx":
			e.ServerErrors += int64(sv.Value)
		}
		eps[name] = e
	}
	for _, sv := range s.tele.timeouts.Series() {
		name := sv.Labels[0]
		e := eps[name]
		e.Timeouts = int64(sv.Value)
		eps[name] = e
	}

	m := &s.metrics
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, le := range m.lastErr {
		e := eps[name]
		e.LastError = le.body
		e.LastErrorUnixMs = le.atUnixMs
		eps[name] = e
	}
	rep := HealthReport{
		Status:         "ok",
		UptimeSeconds:  now.Sub(m.start).Seconds(),
		PendingUpdates: pending,
		Endpoints:      eps,
	}
	if !m.lastErrAt.IsZero() && now.Sub(m.lastErrAt) < time.Minute {
		rep.Status = "degraded"
	}
	return rep
}

// statusRecorder captures the response code and error body for accounting.
type statusRecorder struct {
	http.ResponseWriter
	code    int
	errBody []byte
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code >= 400 && len(r.errBody) < 256 {
		r.errBody = append(r.errBody, b[:min(len(b), 256-len(r.errBody))]...)
	}
	return r.ResponseWriter.Write(b)
}

// instrument wraps a handler with the server's request deadline, honors an
// inbound X-Rockhopper-Trace identity (minting this node's server child
// span under it, per the propagation contract: the header's span ID is the
// parent), and feeds the per-endpoint accounting behind /api/health and
// /metrics, plus the flight recorder and SLO check.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx := r.Context()
		cancel := func() {}
		if s.RequestTimeout > 0 {
			ctx, cancel = context.WithTimeout(ctx, s.RequestTimeout)
		}
		defer cancel()
		inbound, traced := telemetry.ParseTraceHeader(r.Header.Get(telemetry.TraceHeader))
		sc := inbound
		sp := s.tele.tracer.StartRemote(inbound, name, "server")
		if sp != nil {
			sc = sp.Context()
		}
		if traced {
			ctx = telemetry.WithSpan(ctx, sc)
		}
		start := s.clock().Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r.WithContext(ctx))
		now := s.clock().Now()
		dur := now.Sub(start)
		s.observe(name, rec.code, string(rec.errBody), ctx.Err() != nil, dur, now, sc)
		sp.Finish(strconv.Itoa(rec.code))
		if traced && rec.code >= 400 {
			s.logfCtx(sc, "backend: %s -> %d: %s", name, rec.code, rec.errBody)
		}
		if rec.code >= 500 {
			s.flightRec.Eventf(flightrec.LevelError, "backend", sc, "%s -> %d: %s", name, rec.code, rec.errBody)
		}
		if s.SLOLatency > 0 && dur > s.SLOLatency {
			s.flightRec.Eventf(flightrec.LevelWarn, "backend", sc,
				"SLO breach: %s took %s (objective %s, status %d)", name, dur, s.SLOLatency, rec.code)
			if path, err := s.flightRec.Dump("slo_breach"); err != nil {
				s.logfCtx(sc, "backend: flight-recorder dump failed: %v", err)
			} else if path != "" {
				s.logfCtx(sc, "backend: SLO breach on %s; flight recorder dumped to %s", name, path)
			}
		}
	}
}

// handleHealth serves the backend's health report. It is intentionally
// unauthenticated (load balancers and probes poll it) and read-only. A
// latched durable-store failure overrides the endpoint accounting: a
// backend whose store refuses mutations is "down", not merely degraded,
// even if no request has tripped over it yet.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	pending := s.pending
	s.mu.Unlock()
	rep := s.healthReport(pending, s.clock().Now())
	if err := s.storeErr(); err != nil {
		rep.Status = "down"
		rep.StoreError = err.Error()
	}
	writeJSON(w, rep)
}
