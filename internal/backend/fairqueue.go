package backend

// fairQueue is the Model Updater's scheduling structure: one FIFO sub-queue
// per tenant, drained deficit-weighted round-robin so a tenant who floods
// the backlog only delays their own retrains — with equal weights every
// tenant with queued work gets one job per rotation regardless of backlog
// depth. It is a plain data structure, not safe for concurrent use;
// Server.mu guards every call.
type fairQueue struct {
	queues map[string]*tenantQueue
	// order is the round-robin rotation (tenant insertion order); rr indexes
	// the tenant whose turn it is.
	order []string
	rr    int
	size  int
}

type tenantQueue struct {
	jobs []updateJob
	// weight is how many jobs this tenant may drain per turn (>= 1); credit
	// is what remains of the current turn.
	weight int
	credit int
}

// push appends a job to its tenant's sub-queue, creating the sub-queue (at
// weight 1) on first use.
func (q *fairQueue) push(tenant string, j updateJob) {
	tq := q.tenant(tenant)
	tq.jobs = append(tq.jobs, j)
	q.size++
}

// tenant returns (creating if needed) the named sub-queue.
func (q *fairQueue) tenant(name string) *tenantQueue {
	if q.queues == nil {
		q.queues = make(map[string]*tenantQueue)
	}
	tq := q.queues[name]
	if tq == nil {
		tq = &tenantQueue{weight: 1}
		q.queues[name] = tq
		q.order = append(q.order, name)
	}
	return tq
}

// setWeight fixes a tenant's drain weight (minimum 1). Weighted tenants stay
// in the rotation even while empty so the weight survives; default-weight
// tenants are pruned when they drain, bounding the map by the number of
// concurrently active tenants.
func (q *fairQueue) setWeight(tenant string, w int) {
	if w < 1 {
		w = 1
	}
	q.tenant(tenant).weight = w
}

// pop removes and returns the next job under the weighted-fair rotation.
func (q *fairQueue) pop() (updateJob, bool) {
	if q.size == 0 {
		return updateJob{}, false
	}
	// At most one full rotation finds a non-empty sub-queue (size > 0);
	// the bound is captured up front because pruning shrinks order.
	for i := len(q.order); i > 0 && len(q.order) > 0; i-- {
		name := q.order[q.rr]
		tq := q.queues[name]
		if len(tq.jobs) == 0 {
			tq.credit = 0
			q.advanceOrPrune(name, tq)
			continue
		}
		if tq.credit <= 0 {
			tq.credit = tq.weight
		}
		j := tq.jobs[0]
		tq.jobs[0] = updateJob{} // release references held by the popped slot
		tq.jobs = tq.jobs[1:]
		q.size--
		tq.credit--
		if len(tq.jobs) == 0 {
			tq.credit = 0
			q.advanceOrPrune(name, tq)
		} else if tq.credit == 0 {
			q.rr = (q.rr + 1) % len(q.order)
		}
		return j, true
	}
	return updateJob{}, false
}

// advanceOrPrune moves the rotation past the current (empty) sub-queue,
// deleting it entirely when nothing distinguishes it from a fresh one.
func (q *fairQueue) advanceOrPrune(name string, tq *tenantQueue) {
	if tq.weight == 1 {
		delete(q.queues, name)
		q.order = append(q.order[:q.rr], q.order[q.rr+1:]...)
		if len(q.order) > 0 {
			q.rr %= len(q.order)
		} else {
			q.rr = 0
		}
		return
	}
	q.rr = (q.rr + 1) % len(q.order)
}

// depth reports one tenant's queued jobs.
func (q *fairQueue) depth(tenant string) int {
	if tq, ok := q.queues[tenant]; ok {
		return len(tq.jobs)
	}
	return 0
}
