// Package backend implements the Autotune Backend of Section 5 (Figure 7)
// over net/http: it issues scoped access tokens (the SAS-URL analogue)
// after authenticating callers against the cluster token service, serves
// model files and the pre-computed app_cache, ingests Spark event files,
// and hosts the two streaming jobs that close the loop — the Model Updater,
// which retrains a query signature's surrogate whenever new events arrive,
// and the App Cache Generator, which runs the Algorithm 2 joint optimizer
// after an application completes.
package backend

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/applevel"
	"github.com/rockhopper-db/rockhopper/internal/eventlog"
	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/flightrec"
	"github.com/rockhopper-db/rockhopper/internal/ml"
	"github.com/rockhopper-db/rockhopper/internal/monitor"
	"github.com/rockhopper-db/rockhopper/internal/resilience"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
	"github.com/rockhopper-db/rockhopper/internal/tuners"
)

// ClusterTokenHeader carries the Spark-cluster credential; the Autotune
// Manager validates it against the Fabric token service (simulated by a
// shared secret).
const ClusterTokenHeader = "X-Cluster-Token"

// SASTokenHeader carries a store-scoped access token on object requests.
const SASTokenHeader = "X-Sas-Token"

// TokenRequest asks for a scoped store token.
type TokenRequest struct {
	Prefix string           `json:"prefix"`
	Perm   store.Permission `json:"perm"`
}

// TokenResponse returns the signed token.
type TokenResponse struct {
	Token string `json:"token"`
	// TTLSeconds informs the client's refresh schedule.
	TTLSeconds float64 `json:"ttl_seconds"`
}

// QueryHistory is one query's tuning state shipped to the App Cache
// Generator after an application run.
type QueryHistory struct {
	ID           string                 `json:"id"`
	Centroid     sparksim.Config        `json:"centroid"`
	Observations []sparksim.Observation `json:"observations"`
}

// AppCacheRequest asks the backend to recompute an artifact's app-level
// configuration from the run's per-query histories.
type AppCacheRequest struct {
	ArtifactID string          `json:"artifact_id"`
	Current    sparksim.Config `json:"current"`
	Queries    []QueryHistory  `json:"queries"`
}

// ObjectStore is the storage surface the backend consumes. *store.Store is
// the production implementation; resilience tests substitute a fault-
// injecting wrapper (internal/resilience/faultinject).
type ObjectStore interface {
	Sign(prefix string, perm store.Permission, ttl time.Duration) string
	Verify(tok, p string, perm store.Permission) error
	Put(tok, p string, data []byte) error
	Get(tok, p string) ([]byte, error)
	PutInternal(p string, data []byte)
	GetInternal(p string) ([]byte, error)
	List(prefix string) []string
}

// Both the in-memory store and the snapshot+WAL durable store satisfy the
// storage surface; autotuned picks one via -data-dir.
var (
	_ ObjectStore = (*store.Store)(nil)
	_ ObjectStore = (*store.DurableStore)(nil)
)

// FleetHooks is the sharding surface a fleet node installs on its backend
// with SetFleet. The backend stays ignorant of rings and replication
// protocols; it only needs two facts per request: "is this signature mine?"
// (misrouted requests are bounced with 421 + the owner's address so the
// client re-routes) and "is this commit on every follower yet?" (the 202
// may not outrun replication, or an acknowledged event could die with this
// node).
type FleetHooks interface {
	// OwnerOf resolves a signature to the address of its current live
	// owner; self reports whether this node is that owner.
	OwnerOf(signature string) (owner string, self bool)
	// AwaitReplication blocks until every mutation committed so far is
	// acknowledged by all follower replicas.
	AwaitReplication(ctx context.Context) error
}

// SetFleet installs the sharding hooks. Call before serving traffic; a nil
// hook set (the default) keeps the single-node behavior.
func (s *Server) SetFleet(h FleetHooks) { s.fleet = h }

// MisroutedResponse is the 421 body a misrouted ingest gets back: the
// address of the live owner the client should retry against.
type MisroutedResponse struct {
	Owner     string `json:"owner"`
	Signature string `json:"signature"`
}

// checkOwnership bounces a request for a signature this node does not own.
// It reports whether the request may proceed.
func (s *Server) checkOwnership(w http.ResponseWriter, endpoint, signature string) bool {
	if s.fleet == nil {
		return true
	}
	owner, self := s.fleet.OwnerOf(signature)
	if self {
		return true
	}
	s.tele.misrouted.With(endpoint).Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusMisdirectedRequest)
	if err := json.NewEncoder(w).Encode(MisroutedResponse{Owner: owner, Signature: signature}); err != nil {
		s.logf("backend: encode misrouted response: %v", err)
	}
	return false
}

// awaitReplication gates an ingest acknowledgement on follower replicas.
// On failure the commit is locally durable and the model update enqueued,
// but the client must NOT treat the request as acknowledged — it retries,
// and a duplicate event file is harmless noise the retrain tolerates.
func (s *Server) awaitReplication(ctx context.Context, w http.ResponseWriter) bool {
	if s.fleet == nil {
		return true
	}
	if err := s.fleet.AwaitReplication(ctx); err != nil {
		http.Error(w, fmt.Sprintf("fleet: replication not confirmed: %v", err), http.StatusServiceUnavailable)
		return false
	}
	return true
}

// storeErrer is the optional health surface a store may expose:
// DurableStore latches a durability failure and reports it here, because
// PutInternal has no error slot of its own.
type storeErrer interface {
	Err() error
}

// storeErr reports the store's latched failure, if the configured store
// exposes one. The ingest handlers consult it after their PutInternal
// phase-2 commits — an index entry that never reached the WAL must turn
// into a 5xx, not a 202 — and /api/health reports it as status "down".
func (s *Server) storeErr() error {
	if h, ok := s.Store.(storeErrer); ok {
		return h.Err()
	}
	return nil
}

// Server is the Autotune Backend.
type Server struct {
	Space *sparksim.Space
	Store ObjectStore
	Cache *applevel.Cache
	// ClusterSecret authenticates Spark clusters.
	ClusterSecret string
	// TokenTTL bounds issued tokens.
	TokenTTL time.Duration
	// RequestTimeout bounds each HTTP request's context; <= 0 disables the
	// deadline. New sets DefaultRequestTimeout.
	RequestTimeout time.Duration
	// MaxPendingUpdates is the Model Updater backlog at which ingest
	// endpoints start shedding with 429 + Retry-After; <= 0 means
	// DefaultMaxPendingUpdates.
	MaxPendingUpdates int
	// TenantRate is each tenant's token-bucket refill in events/second;
	// <= 0 disables per-tenant rate limiting. Set before serving traffic.
	TenantRate float64
	// TenantBurst is the token-bucket capacity; <= 0 means
	// DefaultTenantBurst.
	TenantBurst float64
	// NodeName stamps every span this server records with the fleet node's
	// identity (empty for a standalone daemon). Set before SetMetrics.
	NodeName string
	// TraceRingSpans is the span-ring capacity behind /api/trace; <= 0
	// means DefaultTraceRingSpans. Set before SetMetrics.
	TraceRingSpans int
	// SLOLatency is the per-request latency objective: a slower request is
	// an SLO breach, recorded in the flight recorder and triggering a
	// black-box snapshot. <= 0 disables the check.
	SLOLatency time.Duration
	// Logger receives operational messages; nil silences them.
	Logger *log.Logger

	// clk drives uptime and degraded-window accounting behind
	// GET /api/health; nil means the wall clock. SetClock injects
	// resilience.FakeClock so health reporting is testable.
	clk resilience.Clock

	// metrics is the per-endpoint error accounting behind GET /api/health.
	metrics serverMetrics

	// tele is the bound instrument set (counters, histograms, span ring)
	// behind /metrics and /api/trace. New binds a per-server registry;
	// SetMetrics rebinds (daemons pass telemetry.Default()).
	tele *backendTelemetry

	// fleet is the sharding surface a fleet node installs (SetFleet); nil
	// means single-node behavior. Set before serving traffic.
	fleet FleetHooks

	// rngMu guards rng: handlers run on arbitrary net/http goroutines, and
	// Split advances the parent stream.
	rngMu sync.Mutex
	rng   *stats.RNG

	// traceRNG mints span IDs. It is a dedicated stream derived from
	// traceSeed — never a Split of rng — so enabling or rebinding tracing
	// can never shift the draw sequence the experiment paths depend on.
	// bindTelemetry folds NodeName into the derivation: fleet nodes share
	// one Seed, and span IDs must still be unique across nodes or trace
	// assembly dedups one node's spans as another's.
	traceSeed uint64
	traceRNG  *stats.RNG

	// flightRec is the node's black-box recorder (nil discards). Set via
	// SetFlightRecorder before serving traffic.
	flightRec *flightrec.Recorder

	// driftMu guards the per-model drift detectors and the count of
	// training traces each has already consumed. The detectors are fed
	// only from the updater goroutine; the mutex covers SetMetrics-time
	// resets and test inspection.
	driftMu  sync.Mutex
	drift    map[string]*monitor.DriftDetector
	driftFed map[string]int

	// seqMu guards seqs, the per-job event-file sequence allocator. Reading
	// len(Store.List(...)) per request would race: two concurrent ingests
	// could observe the same length and overwrite each other's event file.
	seqMu sync.Mutex
	seqs  map[string]int

	// Model Updater scheduling. pending counts admitted-but-unprocessed
	// updates (reserved at admission, released when the retrain finishes) so
	// tests and shutdown can Flush deterministically; peakPending is its
	// high-water mark, pinning the atomic-admission invariant in tests. The
	// jobs themselves live in per-tenant sub-queues drained weighted
	// round-robin — there is no channel, so enqueue cannot race Close into a
	// send-on-closed panic. cond signals both "work available" (the updater
	// waits on it) and "a job finished" (Flush waits on it).
	mu          sync.Mutex
	cond        *sync.Cond
	queue       fairQueue
	pending     int
	peakPending int
	closed      bool
	wg          sync.WaitGroup

	// Per-tenant ingest admission state (token buckets + bounded metric
	// labels), guarded separately so rate decisions never contend with the
	// updater lock.
	tenantMu     sync.Mutex
	buckets      map[string]*tokenBucket
	tenantLabels map[string]bool
}

type updateJob struct {
	user      string
	signature string
	// trace is the ingest request's identity, carried across the queue so
	// the retrain it triggers logs under the same trace.
	trace telemetry.SpanContext
}

// DefaultRequestTimeout is the per-request deadline New installs.
const DefaultRequestTimeout = 15 * time.Second

// DefaultMaxPendingUpdates is the Model Updater backlog shed threshold when
// MaxPendingUpdates is unset.
const DefaultMaxPendingUpdates = 256

// New constructs a backend server and starts its streaming jobs.
func New(space *sparksim.Space, st ObjectStore, clusterSecret string, seed uint64) *Server {
	s := &Server{
		Space:          space,
		Store:          st,
		Cache:          applevel.NewCache(),
		ClusterSecret:  clusterSecret,
		TokenTTL:       15 * time.Minute,
		RequestTimeout: DefaultRequestTimeout,
		rng:            stats.NewRNG(seed),
		traceSeed:      seed ^ 0x9e3779b97f4a7c15,
		seqs:           make(map[string]int),
		drift:          make(map[string]*monitor.DriftDetector),
		driftFed:       make(map[string]int),
	}
	s.bindTelemetry(telemetry.NewRegistry())
	s.metrics.start = s.clock().Now()
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(1)
	go s.modelUpdater()
	return s
}

// SetClock injects the server's clock (tests and simulations) and re-bases
// the uptime origin so every health timestamp lives in the injected
// timeline.
func (s *Server) SetClock(c resilience.Clock) {
	s.clk = c
	s.metrics.mu.Lock()
	s.metrics.start = c.Now()
	s.metrics.mu.Unlock()
}

func (s *Server) clock() resilience.Clock {
	if s.clk != nil {
		return s.clk
	}
	return resilience.RealClock{}
}

// traceIDs is the ID stream the server's tracer mints span IDs from.
func (s *Server) traceIDs() *stats.RNG { return s.traceRNG }

// SetFlightRecorder installs the node's black-box recorder (nil discards).
// Set before serving traffic.
func (s *Server) SetFlightRecorder(r *flightrec.Recorder) { s.flightRec = r }

// FlightRecorder returns the installed recorder (possibly nil).
func (s *Server) FlightRecorder() *flightrec.Recorder { return s.flightRec }

// handleFlightRec serves the live flight-recorder ring, oldest event first,
// in the same Snapshot shape Dump writes — the black box is readable before
// anything has gone wrong, not only from its on-disk dumps.
func (s *Server) handleFlightRec(w http.ResponseWriter, r *http.Request) {
	evs := s.flightRec.Events()
	if evs == nil {
		evs = []flightrec.Event{}
	}
	writeJSON(w, flightrec.Snapshot{Node: s.NodeName, Reason: "live", Events: evs})
}

// The optional context-carrying store surfaces: a DurableStore that traces
// its WAL commit path implements these, so the request's span identity
// reaches the wal_append/wal_fsync spans. Plain stores (and fault-injection
// wrappers) fall back to the untraced methods.
type ctxPutter interface {
	PutCtx(ctx context.Context, tok, p string, data []byte) error
}
type ctxInternalPutter interface {
	PutInternalCtx(ctx context.Context, p string, data []byte)
}
type ctxBatchPutter interface {
	PutBatchCtx(ctx context.Context, entries []store.BatchEntry) error
}

func (s *Server) storePut(ctx context.Context, tok, p string, data []byte) error {
	if cp, ok := s.Store.(ctxPutter); ok {
		return cp.PutCtx(ctx, tok, p, data)
	}
	return s.Store.Put(tok, p, data)
}

func (s *Server) storePutInternal(ctx context.Context, p string, data []byte) {
	if cp, ok := s.Store.(ctxInternalPutter); ok {
		cp.PutInternalCtx(ctx, p, data)
		return
	}
	s.Store.PutInternal(p, data)
}

// Close stops the streaming jobs after draining the queue. Closing flips
// closed under the updater lock and wakes the updater; there is no channel
// to close, so an ingest racing Close either enqueues before the flag (and
// is drained) or observes it and releases its reservation.
func (s *Server) Close() {
	s.Flush()
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Flush blocks until every enqueued model update has been processed.
func (s *Server) Flush() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.pending > 0 {
		s.cond.Wait()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.Logger != nil {
		s.Logger.Printf(format, args...)
	}
}

// logfCtx is logf with the trace identity prefixed, so a client-initiated
// request's log lines are greppable by its X-Rockhopper-Trace value.
func (s *Server) logfCtx(sc telemetry.SpanContext, format string, args ...any) {
	if s.Logger == nil {
		return
	}
	if sc.Valid() {
		s.Logger.Printf("[trace %s] "+format, append([]any{sc}, args...)...)
		return
	}
	s.Logger.Printf(format, args...)
}

// Handler returns the backend's HTTP routes. Every endpoint runs under the
// server's request deadline and feeds the per-endpoint error accounting
// surfaced by GET /api/health.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/token", s.instrument("token", s.handleToken))
	mux.HandleFunc("GET /api/object", s.instrument("get_object", s.handleGetObject))
	mux.HandleFunc("PUT /api/object", s.instrument("put_object", s.handlePutObject))
	mux.HandleFunc("POST /api/events", s.instrument("events", s.handleEvents))
	mux.HandleFunc("POST /api/events/batch", s.instrument("events_batch", s.handleEventBatch))
	mux.HandleFunc("POST /api/eventlog", s.instrument("eventlog", s.handleEventLog))
	mux.HandleFunc("GET /api/appcache", s.instrument("get_appcache", s.handleGetAppCache))
	mux.HandleFunc("POST /api/appcache", s.instrument("compute_appcache", s.handleComputeAppCache))
	mux.HandleFunc("GET /api/health", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /api/trace", s.handleTrace)
	mux.HandleFunc("GET /api/flightrec", s.handleFlightRec)
	return mux
}

// authenticated validates the cluster credential.
func (s *Server) authenticated(r *http.Request) bool {
	return r.Header.Get(ClusterTokenHeader) == s.ClusterSecret
}

func (s *Server) handleToken(w http.ResponseWriter, r *http.Request) {
	if !s.authenticated(r) {
		http.Error(w, "cluster token rejected", http.StatusUnauthorized)
		return
	}
	var req TokenRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.Prefix == "" || (req.Perm != store.PermRead && req.Perm != store.PermWrite) {
		http.Error(w, "prefix and perm required", http.StatusBadRequest)
		return
	}
	tok := s.Store.Sign(req.Prefix, req.Perm, s.TokenTTL)
	writeJSON(w, TokenResponse{Token: tok, TTLSeconds: s.TokenTTL.Seconds()})
}

func (s *Server) handleGetObject(w http.ResponseWriter, r *http.Request) {
	p := r.URL.Query().Get("path")
	blob, err := s.Store.Get(r.Header.Get(SASTokenHeader), p)
	if err != nil {
		http.Error(w, err.Error(), storeStatus(err))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(blob)
}

func (s *Server) handlePutObject(w http.ResponseWriter, r *http.Request) {
	p := r.URL.Query().Get("path")
	blob, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.Store.Put(r.Header.Get(SASTokenHeader), p, blob); err != nil {
		http.Error(w, err.Error(), storeStatus(err))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleEvents ingests a JSON-lines batch of execution traces for one query
// signature, persists it as an event file, and enqueues a model update —
// the Event Hub trigger of Figure 7.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	user, signature, jobID := q.Get("user"), q.Get("signature"), q.Get("job_id")
	if user == "" || signature == "" || jobID == "" {
		http.Error(w, "user, signature, job_id required", http.StatusBadRequest)
		return
	}
	if !s.checkOwnership(w, "events", signature) {
		return
	}
	start := s.clock().Now()
	admitted := 0
	defer func() { s.observeIngest(user, start, admitted) }()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Validate the payload parses before persisting.
	traces, err := flighting.ReadTraces(bytesReader(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if ok, retry := s.admitTenant(user, float64(len(traces))); !ok {
		s.shedRateLimited(w, "events", user, retry)
		return
	}
	// Reserve the updater slot atomically (see tryAdmit); every error path
	// below must release it.
	if !s.tryAdmit(1) {
		s.shedQueueFull(w, "events", user)
		return
	}
	seq := s.nextSeq(jobID)
	p := store.EventPath(jobID, seq)
	if err := s.storePut(r.Context(), r.Header.Get(SASTokenHeader), p, body); err != nil {
		s.releaseAdmit(1)
		http.Error(w, err.Error(), storeStatus(err))
		return
	}
	// Track signature → event files so the updater can find training data.
	// PutInternal cannot return an error, so a durable store that failed to
	// log the entry is only visible through its latched Err — check it
	// before acknowledging, or the unindexed event file would be silently
	// orphaned (and eventually reaped) behind a 202.
	s.storePutInternal(r.Context(), signatureIndexPath(user, signature, jobID, seq), nil)
	if err := s.storeErr(); err != nil {
		s.releaseAdmit(1)
		http.Error(w, fmt.Sprintf("store: index commit not persisted: %v", err), http.StatusInternalServerError)
		return
	}
	s.enqueueReserved(updateJob{user: user, signature: signature, trace: telemetry.SpanFrom(r.Context())})
	if !s.awaitReplication(r.Context(), w) {
		return
	}
	admitted = len(traces)
	w.WriteHeader(http.StatusAccepted)
}

// handleEventLog ingests a RAW Spark event log: the Embedding ETL parses
// the listener events, extracts plans/configs/durations, computes workload
// embeddings, and persists the digested traces — then the Model Updater is
// triggered exactly as for pre-digested events. The signature is derived
// from each execution's plan, so one log may feed several signatures.
func (s *Server) handleEventLog(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	user, jobID := q.Get("user"), q.Get("job_id")
	if user == "" || jobID == "" {
		http.Error(w, "user and job_id required", http.StatusBadRequest)
		return
	}
	start := s.clock().Now()
	admitted := 0
	defer func() { s.observeIngest(user, start, admitted) }()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 256<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	runs, err := eventlog.ParseBytes(body, s.Space)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(runs) == 0 {
		http.Error(w, "event log contains no complete executions", http.StatusUnprocessableEntity)
		return
	}
	if ok, retry := s.admitTenant(user, float64(len(runs))); !ok {
		s.shedRateLimited(w, "eventlog", user, retry)
		return
	}
	// Group digested traces by plan signature.
	bySig := map[string][]flighting.Trace{}
	for _, run := range runs {
		sig := sparksim.Signature(run.Plan)
		tr := eventlog.ETL([]eventlog.Run{run}, nil)
		if len(tr) == 0 {
			continue
		}
		tr[0].QueryID = sig
		bySig[sig] = append(bySig[sig], tr[0])
	}
	// Walk signatures in a stable order so sequence assignment is
	// deterministic for a given log.
	sigs := make([]string, 0, len(bySig))
	for sig := range bySig {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	// One updater slot per signature, reserved atomically up front so the
	// whole log is admitted or shed as a unit.
	if !s.tryAdmit(len(sigs)) {
		s.shedQueueFull(w, "eventlog", user)
		return
	}
	// Two-phase ingest so a mid-loop store failure cannot leave some
	// signature batches persisted+enqueued and others lost behind a 5xx.
	// Phase 1 stages every event file; only after all writes succeed does
	// phase 2 commit the index entries and enqueue model updates. Staged
	// files without index entries are invisible to the Model Updater and
	// reaped by the retention sweep.
	tok := r.Header.Get(SASTokenHeader)
	type staged struct {
		sig string
		seq int
	}
	var commits []staged
	for _, sig := range sigs {
		if err := r.Context().Err(); err != nil {
			s.releaseAdmit(len(sigs))
			http.Error(w, "request deadline exceeded", http.StatusServiceUnavailable)
			return
		}
		var buf bytes.Buffer
		if err := flighting.WriteTraces(&buf, bySig[sig]); err != nil {
			s.releaseAdmit(len(sigs))
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		seq := s.nextSeq(jobID)
		if err := s.storePut(r.Context(), tok, store.EventPath(jobID, seq), buf.Bytes()); err != nil {
			s.releaseAdmit(len(sigs))
			http.Error(w, err.Error(), storeStatus(err))
			return
		}
		commits = append(commits, staged{sig: sig, seq: seq})
	}
	for _, c := range commits {
		s.storePutInternal(r.Context(), signatureIndexPath(user, c.sig, jobID, c.seq), nil)
		s.enqueueReserved(updateJob{user: user, signature: c.sig, trace: telemetry.SpanFrom(r.Context())})
	}
	// Same phase-2 durability check as handleEvents: if any index commit
	// hit a latched store failure, surface a 5xx so the client retries
	// instead of trusting a 202 for entries that never reached the WAL.
	if err := s.storeErr(); err != nil {
		http.Error(w, fmt.Sprintf("store: index commit not persisted: %v", err), http.StatusInternalServerError)
		return
	}
	// Raw event logs are accepted on any node — the signatures inside are
	// unknown until the ETL runs, so clients cannot route them — but the
	// acknowledgement is still replication-gated.
	if !s.awaitReplication(r.Context(), w) {
		return
	}
	admitted = len(runs)
	w.WriteHeader(http.StatusAccepted)
}

// BatchResponse acknowledges a batched ingest: how many signatures were
// indexed and how many traces they carried.
type BatchResponse struct {
	Signatures int `json:"signatures"`
	Events     int `json:"events"`
}

// batchPutter is the optional group-commit surface a store may expose.
// Both store flavors implement it; wrappers (fault injection) that don't
// fall back to the two-phase per-entry path.
type batchPutter interface {
	PutBatch([]store.BatchEntry) error
}

// handleEventBatch ingests pre-digested traces spanning many query
// signatures in ONE call: the body is the same JSON-lines trace format as
// /api/events, but each trace's queryId names its signature. The whole
// batch — every event file and every index entry — is committed as a
// single store group commit (one WAL append + one fsync), so a 202 means
// the entire batch is durable and a crash can never surface part of it.
func (s *Server) handleEventBatch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	user, jobID := q.Get("user"), q.Get("job_id")
	if user == "" || jobID == "" {
		http.Error(w, "user and job_id required", http.StatusBadRequest)
		return
	}
	start := s.clock().Now()
	admitted := 0
	defer func() { s.observeIngest(user, start, admitted) }()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	traces, err := flighting.ReadTraces(bytesReader(body))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(traces) == 0 {
		http.Error(w, "batch contains no traces", http.StatusUnprocessableEntity)
		return
	}
	bySig := map[string][]flighting.Trace{}
	for i, tr := range traces {
		if tr.QueryID == "" {
			http.Error(w, fmt.Sprintf("trace %d has no queryId (the batch signature key)", i), http.StatusBadRequest)
			return
		}
		bySig[tr.QueryID] = append(bySig[tr.QueryID], tr)
	}
	// A batch must be wholly owned by this node: the group commit is
	// all-or-nothing, so a partially misrouted batch is bounced before any
	// admission state is touched (the router partitions batches by owner).
	if s.fleet != nil {
		misrouted := make([]string, 0, len(bySig))
		for sig := range bySig {
			misrouted = append(misrouted, sig)
		}
		sort.Strings(misrouted)
		for _, sig := range misrouted {
			if !s.checkOwnership(w, "events_batch", sig) {
				return
			}
		}
	}
	if ok, retry := s.admitTenant(user, float64(len(traces))); !ok {
		s.shedRateLimited(w, "events_batch", user, retry)
		return
	}
	// Verify the write token against the job's event folder BEFORE burning
	// sequence numbers or updater slots.
	tok := r.Header.Get(SASTokenHeader)
	if err := s.Store.Verify(tok, "events/"+jobID+"/", store.PermWrite); err != nil {
		http.Error(w, err.Error(), storeStatus(err))
		return
	}
	sigs := make([]string, 0, len(bySig))
	for sig := range bySig {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	if !s.tryAdmit(len(sigs)) {
		s.shedQueueFull(w, "events_batch", user)
		return
	}
	// Render every signature's event file and its index entry into one
	// entry list, in stable signature order.
	entries := make([]store.BatchEntry, 0, 2*len(sigs))
	type staged struct {
		sig string
		seq int
	}
	commits := make([]staged, 0, len(sigs))
	for _, sig := range sigs {
		var buf bytes.Buffer
		if err := flighting.WriteTraces(&buf, bySig[sig]); err != nil {
			s.releaseAdmit(len(sigs))
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		seq := s.nextSeq(jobID)
		entries = append(entries,
			store.BatchEntry{Path: store.EventPath(jobID, seq), Data: buf.Bytes()},
			store.BatchEntry{Path: signatureIndexPath(user, sig, jobID, seq)},
		)
		commits = append(commits, staged{sig: sig, seq: seq})
	}
	if bs, ok := s.Store.(ctxBatchPutter); ok {
		// Group commit: event files + index entries behind one WAL record.
		if err := bs.PutBatchCtx(r.Context(), entries); err != nil {
			s.releaseAdmit(len(sigs))
			http.Error(w, fmt.Sprintf("store: batch commit not persisted: %v", err), storeStatus(err))
			return
		}
	} else if bs, ok := s.Store.(batchPutter); ok {
		// Group commit without the context surface (wrapped batch stores).
		if err := bs.PutBatch(entries); err != nil {
			s.releaseAdmit(len(sigs))
			http.Error(w, fmt.Sprintf("store: batch commit not persisted: %v", err), storeStatus(err))
			return
		}
	} else {
		// Two-phase fallback for stores without group commit (wrapped
		// stores): stage event files, then commit index entries, with the
		// same latched-failure check as the other ingest paths.
		for i := 0; i < len(entries); i += 2 {
			if err := s.storePut(r.Context(), tok, entries[i].Path, entries[i].Data); err != nil {
				s.releaseAdmit(len(sigs))
				http.Error(w, err.Error(), storeStatus(err))
				return
			}
		}
		for i := 1; i < len(entries); i += 2 {
			s.storePutInternal(r.Context(), entries[i].Path, nil)
		}
		if err := s.storeErr(); err != nil {
			s.releaseAdmit(len(sigs))
			http.Error(w, fmt.Sprintf("store: index commit not persisted: %v", err), http.StatusInternalServerError)
			return
		}
	}
	for _, c := range commits {
		s.enqueueReserved(updateJob{user: user, signature: c.sig, trace: telemetry.SpanFrom(r.Context())})
	}
	if !s.awaitReplication(r.Context(), w) {
		return
	}
	admitted = len(traces)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	if err := json.NewEncoder(w).Encode(BatchResponse{Signatures: len(sigs), Events: len(traces)}); err != nil {
		s.logf("backend: encode batch response: %v", err)
	}
}

// nextSeq allocates the next event-file sequence number for a job. The
// counter is seeded lazily from the store so a restarted server never reuses
// a number, then advances atomically under seqMu.
func (s *Server) nextSeq(jobID string) int {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	seq, ok := s.seqs[jobID]
	if !ok {
		seq = len(s.Store.List("events/" + jobID + "/"))
	}
	s.seqs[jobID] = seq + 1
	return seq
}

func signatureIndexPath(user, signature, jobID string, seq int) string {
	return fmt.Sprintf("index/%s/%s/%s-%06d", user, signature, jobID, seq)
}

// parseIndexEntry splits a "<jobID>-<seq>" index-entry suffix on its last
// '-'. The %06d zero-padding is a sort convenience, not a width contract:
// sequence numbers past 999999 print wider and still round-trip.
func parseIndexEntry(rest string) (jobID string, seq int, err error) {
	i := strings.LastIndexByte(rest, '-')
	if i <= 0 || i == len(rest)-1 {
		return "", 0, fmt.Errorf("no jobID-seq separator in %q", rest)
	}
	seq, err = strconv.Atoi(rest[i+1:])
	if err != nil || seq < 0 {
		return "", 0, fmt.Errorf("bad sequence number in %q", rest)
	}
	return rest[:i], seq, nil
}

// enqueueReserved hands an admitted job to the fair queue. The caller has
// already reserved its updater slot via tryAdmit; the push happens entirely
// under s.mu, so a racing Close either sees the job (and drains it) or has
// already flipped closed — in which case the job is dropped here and its
// reservation released. The old implementation released the lock and then
// sent on a channel Close could concurrently close; that panic window is
// structurally gone.
func (s *Server) enqueueReserved(j updateJob) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.pending--
		s.cond.Broadcast()
		return
	}
	s.queue.push(j.user, j)
	s.cond.Broadcast()
}

// modelUpdater is the streaming Model Updater: it retrains the signature's
// surrogate from all of its event files and stores the serialized model.
// Jobs come off the per-tenant fair queue, so one tenant's backlog cannot
// starve another's retrains.
func (s *Server) modelUpdater() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.queue.size == 0 && !s.closed {
			s.cond.Wait()
		}
		j, ok := s.queue.pop()
		s.mu.Unlock()
		if !ok {
			return // closed and drained
		}
		s.retrain(j)
		s.mu.Lock()
		s.pending--
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

func (s *Server) retrain(j updateJob) {
	user, signature := j.user, j.signature
	started := s.clock().Now()
	// The retrain span parents under the ingest request's server span
	// (carried across the queue in j.trace), so a trace's causal tree shows
	// the model update the ingest triggered, with its duration.
	sp := s.tele.tracer.StartRemote(j.trace, "retrain", "tuner")
	sp.Annotate("%s/%s", user, signature)
	status := "ok"
	defer func() { sp.Finish(status) }()
	var traces []flighting.Trace
	prefix := fmt.Sprintf("index/%s/%s/", user, signature)
	for _, idx := range s.Store.List(prefix) {
		// index/<user>/<sig>/<jobID>-<seq>. jobID may itself contain '-',
		// and seq outgrows its %06d zero-padding after 999999 event files,
		// so split on the LAST separator instead of a fixed width.
		jobID, seq, err := parseIndexEntry(idx[len(prefix):])
		if err != nil {
			s.logf("backend: skipping malformed index entry %q: %v", idx, err)
			continue
		}
		blob, err := s.Store.GetInternal(store.EventPath(jobID, seq))
		if err != nil {
			s.logf("backend: index entry %q points at unreadable event file: %v", idx, err)
			continue
		}
		ts, err := flighting.ReadTraces(bytesReader(blob))
		if err != nil {
			s.logf("backend: corrupt event file for index entry %q: %v", idx, err)
			continue
		}
		traces = append(traces, ts...)
	}
	if len(traces) < 4 {
		status = "skipped"
		return // not enough data yet; the client keeps using the baseline
	}
	sp.Annotate("%d traces", len(traces))
	// Score the serving model's residuals before replacing it.
	s.observeDrift(j.trace, user, signature, traces)
	x := make([][]float64, len(traces))
	y := make([]float64, len(traces))
	for i, t := range traces {
		x[i] = tuners.ConfigFeatures(s.Space, nil, t.Config, t.DataSize)
		y[i] = math.Log1p(t.TimeMs)
	}
	best := math.Inf(1)
	for _, t := range traces {
		best = math.Min(best, t.TimeMs)
	}
	kr := ml.NewKernelRidge()
	kr.Alpha = 0.3
	if err := kr.Fit(x, y); err != nil {
		status = "error"
		s.logfCtx(j.trace, "backend: retrain %s/%s: %v", user, signature, err)
		return
	}
	blob, err := ml.Marshal(kr)
	if err != nil {
		status = "error"
		s.logfCtx(j.trace, "backend: marshal %s/%s: %v", user, signature, err)
		return
	}
	s.Store.PutInternal(store.ModelPath(user, signature), blob)
	s.tele.retrains.Inc()
	s.tele.retrainSeconds.Observe(s.clock().Now().Sub(started).Seconds())
	//rocklint:allow metriccardinality -- best-cost gauge is partitioned by the model store's own user/signature set; DESIGN.md §8 blesses these labels on model gauges
	s.tele.bestCost.With(user, signature).Set(best)
	s.persistBestCost(j.trace, user, signature, best)
	s.logfCtx(j.trace, "backend: retrained %s/%s on %d traces", user, signature, len(traces))
}

// bestCostRecord is the durable form of one rockhopper_model_best_cost_ms
// gauge sample, persisted so a restarted daemon re-registers the series
// instead of showing a false improvement to zero. The identifying fields
// live in the blob, not the path, because user and signature are free-form
// and may contain '/'.
type bestCostRecord struct {
	User      string  `json:"user"`
	Signature string  `json:"signature"`
	BestMs    float64 `json:"best_ms"`
}

// bestCostPrefix is the store folder holding persisted best-cost records.
// It is outside "events/", so the retention sweep never reaps it.
const bestCostPrefix = "meta/bestcost/"

func bestCostPath(user, signature string) string {
	return bestCostPrefix + user + "/" + signature
}

func (s *Server) persistBestCost(sc telemetry.SpanContext, user, signature string, best float64) {
	blob, err := json.Marshal(bestCostRecord{User: user, Signature: signature, BestMs: best})
	if err != nil {
		s.logfCtx(sc, "backend: encode best-cost record %s/%s: %v", user, signature, err)
		return
	}
	s.Store.PutInternal(bestCostPath(user, signature), blob)
}

func (s *Server) handleGetAppCache(w http.ResponseWriter, r *http.Request) {
	if !s.authenticated(r) {
		http.Error(w, "cluster token rejected", http.StatusUnauthorized)
		return
	}
	artifact := r.URL.Query().Get("artifact_id")
	entry, ok := s.Cache.Get(artifact)
	if !ok {
		http.Error(w, "no cached configuration", http.StatusNotFound)
		return
	}
	writeJSON(w, entry)
}

// handleComputeAppCache is the App Cache Generator: it fits per-query
// surrogates from the submitted histories, runs Algorithm 2, and stores the
// winning app-level configuration under the artifact id.
func (s *Server) handleComputeAppCache(w http.ResponseWriter, r *http.Request) {
	if !s.authenticated(r) {
		http.Error(w, "cluster token rejected", http.StatusUnauthorized)
		return
	}
	var req AppCacheRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.ArtifactID == "" || len(req.Queries) == 0 || len(req.Current) != s.Space.Dim() {
		http.Error(w, "artifact_id, current config, and queries required", http.StatusBadRequest)
		return
	}
	states := make([]applevel.QueryState, 0, len(req.Queries))
	for _, qh := range req.Queries {
		qs, err := applevel.FitQueryState(s.Space, qh.ID, qh.Centroid, qh.Observations)
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
		states = append(states, qs)
	}
	// The joint optimizer is the backend's heaviest handler work; honor the
	// request deadline before committing to it.
	if err := r.Context().Err(); err != nil {
		http.Error(w, "request deadline exceeded", http.StatusServiceUnavailable)
		return
	}
	s.rngMu.Lock()
	jr := s.rng.Split()
	s.rngMu.Unlock()
	jo := applevel.NewJointOptimizer(s.Space, jr)
	best, err := jo.Optimize(req.Current, states)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	var score float64
	for _, qs := range states {
		score += qs.Predict(best, qs.DataSize)
	}
	s.Cache.Put(req.ArtifactID, best, score)
	entry, _ := s.Cache.Get(req.ArtifactID)
	writeJSON(w, entry)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// storeStatus maps store errors to distinct HTTP statuses so clients can
// tell "does not exist" (404) from "not allowed" (403) from "broken" (500)
// — conflating these is exactly the silent-degradation bug the client's
// model loader used to have.
func storeStatus(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case isTokenErr(err):
		return http.StatusForbidden
	case errors.Is(err, store.ErrNotFound):
		return http.StatusNotFound
	default:
		return http.StatusInternalServerError
	}
}

func isTokenErr(err error) bool {
	return errors.Is(err, store.ErrTokenInvalid) ||
		errors.Is(err, store.ErrTokenExpired) ||
		errors.Is(err, store.ErrTokenScope)
}

func bytesReader(b []byte) io.Reader { return bytes.NewReader(b) }
