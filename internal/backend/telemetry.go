package backend

import (
	"encoding/json"
	"net/http"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// DefaultTraceRingSpans bounds the in-memory span buffer behind
// GET /api/trace when Server.TraceRingSpans is unset (autotuned -trace-ring
// overrides it).
const DefaultTraceRingSpans = 256

// backendTelemetry is the server's bound instrument set. It is built once in
// New (against a per-server registry) or rebound by SetMetrics before
// serving; handlers read it without locks.
type backendTelemetry struct {
	reg      *telemetry.Registry
	requests *telemetry.CounterVec   // {endpoint, code class}
	timeouts *telemetry.CounterVec   // {endpoint}
	latency  *telemetry.HistogramVec // {endpoint}
	shed     *telemetry.CounterVec   // {endpoint}

	retrains       telemetry.Counter
	retrainSeconds telemetry.Histogram
	bestCost       *telemetry.GaugeVec   // {user, signature}
	misrouted      *telemetry.CounterVec // {endpoint}: 421 bounces to the owning shard

	// Per-tenant ingest series. The tenant label is bounded by
	// maxTenantLabelValues (overflow lumps into "other") per the §8
	// cardinality rule.
	tenantAdmitted      *telemetry.CounterVec   // {tenant}
	tenantShed          *telemetry.CounterVec   // {tenant, reason}
	tenantIngestSeconds *telemetry.HistogramVec // {tenant}

	// Tuning-health series: Page-Hinkley drift score and binary state per
	// model, fed by the retrain loop's residual stream.
	driftScore *telemetry.GaugeVec // {user, signature}
	driftState *telemetry.GaugeVec // {user, signature}

	spans  *telemetry.SpanRing
	tracer *telemetry.Tracer
}

// SetMetrics rebinds the server's instruments onto reg — daemons pass
// telemetry.Default() so /metrics aggregates every component; tests pass a
// fresh registry to assert in isolation. Must be called before the handler
// serves traffic: rebinding resets nothing on the old registry, it simply
// stops writing there.
func (s *Server) SetMetrics(reg *telemetry.Registry) { s.bindTelemetry(reg) }

// Metrics returns the registry the server currently publishes to.
func (s *Server) Metrics() *telemetry.Registry { return s.tele.reg }

func (s *Server) bindTelemetry(reg *telemetry.Registry) {
	t := &backendTelemetry{
		reg: reg,
		requests: reg.Counter("rockhopper_http_requests_total",
			"HTTP requests by endpoint and status code class.", "endpoint", "code"),
		timeouts: reg.Counter("rockhopper_http_timeouts_total",
			"Requests whose deadline expired while handling.", "endpoint"),
		latency: reg.Histogram("rockhopper_http_request_duration_seconds",
			"Request handling latency in seconds.", nil, "endpoint"),
		shed: reg.Counter("rockhopper_shed_total",
			"Ingest requests shed with 429 (updater queue saturated or tenant rate limit).", "endpoint"),
		tenantAdmitted: reg.Counter("rockhopper_tenant_admitted_total",
			"Events accepted for ingest, by tenant (label bounded; overflow is \"other\").", "tenant"),
		tenantShed: reg.Counter("rockhopper_tenant_shed_total",
			"Ingest requests shed with 429, by tenant and reason (rate_limit or queue_full).", "tenant", "reason"),
		tenantIngestSeconds: reg.Histogram("rockhopper_tenant_ingest_seconds",
			"Ingest request handling latency in seconds, by tenant.", nil, "tenant"),
		retrains: reg.Counter("rockhopper_updater_retrains_total",
			"Model Updater retrain passes that produced a model.").With(),
		retrainSeconds: reg.Histogram("rockhopper_updater_retrain_seconds",
			"Model retrain duration in seconds.", nil).With(),
		bestCost: reg.Gauge("rockhopper_model_best_cost_ms",
			"Best observed execution time (ms) across a signature's training traces.", "user", "signature"),
		misrouted: reg.Counter("rockhopper_fleet_misrouted_total",
			"Ingest requests bounced with 421 because another node owns the signature.", "endpoint"),
		driftScore: reg.Gauge("rockhopper_signature_drift_score",
			"Page-Hinkley drift score over a model's prediction residuals (0 = on-model).", "user", "signature"),
		driftState: reg.Gauge("rockhopper_signature_drift_state",
			"1 while a signature's drift detector has tripped, 0 while the model tracks reality.", "user", "signature"),
	}
	ringSize := s.TraceRingSpans
	if ringSize <= 0 {
		ringSize = DefaultTraceRingSpans
	}
	// Derive the span-ID stream from the seed AND the node identity: fleet
	// nodes are built from one shared Seed, and two nodes minting the same
	// ID sequence would collide in trace assembly (dedup by span ID eats
	// the follower's spans). Rebinding re-derives the stream; SetMetrics is
	// documented pre-traffic, so no live trace straddles the reset.
	h := uint64(14695981039346656037)
	for _, b := range []byte(s.NodeName) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	s.traceRNG = stats.NewRNG(s.traceSeed ^ h)
	t.spans = telemetry.NewSpanRing(ringSize)
	evicted := reg.Counter("rockhopper_trace_spans_evicted_total",
		"Spans overwritten in the trace ring before a gather read them — raise -trace-ring if this grows under fleet load.").With()
	t.spans.OnEvict(evicted.Inc)
	t.tracer = telemetry.NewTracer(t.spans, s.NodeName,
		func() time.Time { return s.clock().Now() }, s.traceIDs())
	reg.GaugeFunc("rockhopper_updater_queue_depth",
		"Model Updater jobs enqueued but not yet processed.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.pending)
		})
	if lener, ok := s.Store.(interface{ Len() int }); ok {
		reg.GaugeFunc("rockhopper_store_objects",
			"Objects resident in the backend object store.", func() float64 {
				return float64(lener.Len())
			})
	}
	// Re-register persisted best-cost gauges (bestCostPrefix records) so a
	// restarted daemon's dashboards keep their per-signature series instead
	// of seeing a false improvement to zero after every deploy.
	if s.Store != nil {
		for _, p := range s.Store.List(bestCostPrefix) {
			blob, err := s.Store.GetInternal(p)
			if err != nil {
				continue
			}
			var rec bestCostRecord
			if json.Unmarshal(blob, &rec) != nil || rec.User == "" || rec.Signature == "" {
				continue
			}
			//rocklint:allow metriccardinality -- boot-time restore: labels are exactly the persisted best-cost records already on disk (DESIGN.md §8 model-gauge blessing)
			t.bestCost.With(rec.User, rec.Signature).Set(rec.BestMs)
		}
	}
	s.tele = t
}

// codeClass buckets an HTTP status for the requests counter — classes keep
// the label set closed (cardinality rule, DESIGN.md §8).
func codeClass(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	case status >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// handleMetrics serves the bound registry in Prometheus text format. Like
// /api/health it is unauthenticated: scrapers don't hold cluster secrets.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.tele.reg.Handler().ServeHTTP(w, r)
}

// handleTrace serves the span ring, oldest first — the poor man's trace
// viewer for correlating a client call with backend work. ?trace=<16 hex>
// narrows the dump to one trace's fragments, which is what rockmon -trace
// gathers from every node before assembling the cross-node tree.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	spans := s.tele.spans.Snapshot()
	if want := r.URL.Query().Get("trace"); want != "" {
		filtered := make([]telemetry.Span, 0, len(spans))
		for _, sp := range spans {
			if sp.TraceID == want {
				filtered = append(filtered, sp)
			}
		}
		spans = filtered
	}
	if spans == nil {
		spans = []telemetry.Span{}
	}
	writeJSON(w, spans)
}

// Tracer exposes the server's span tracer so co-located components (the
// durable store's WAL path, the fleet replicator and promotion replay)
// record into the same ring the daemon serves at /api/trace.
func (s *Server) Tracer() *telemetry.Tracer { return s.tele.tracer }

func (s *Server) maxPending() int {
	if s.MaxPendingUpdates > 0 {
		return s.MaxPendingUpdates
	}
	return DefaultMaxPendingUpdates
}
