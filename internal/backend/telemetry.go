package backend

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// spanRingSize bounds the in-memory span buffer behind GET /api/trace.
const spanRingSize = 256

// backendTelemetry is the server's bound instrument set. It is built once in
// New (against a per-server registry) or rebound by SetMetrics before
// serving; handlers read it without locks.
type backendTelemetry struct {
	reg      *telemetry.Registry
	requests *telemetry.CounterVec   // {endpoint, code class}
	timeouts *telemetry.CounterVec   // {endpoint}
	latency  *telemetry.HistogramVec // {endpoint}
	shed     *telemetry.CounterVec   // {endpoint}

	retrains       telemetry.Counter
	retrainSeconds telemetry.Histogram
	bestCost       *telemetry.GaugeVec   // {user, signature}
	misrouted      *telemetry.CounterVec // {endpoint}: 421 bounces to the owning shard

	// Per-tenant ingest series. The tenant label is bounded by
	// maxTenantLabelValues (overflow lumps into "other") per the §8
	// cardinality rule.
	tenantAdmitted      *telemetry.CounterVec   // {tenant}
	tenantShed          *telemetry.CounterVec   // {tenant, reason}
	tenantIngestSeconds *telemetry.HistogramVec // {tenant}

	spans *telemetry.SpanRing
}

// SetMetrics rebinds the server's instruments onto reg — daemons pass
// telemetry.Default() so /metrics aggregates every component; tests pass a
// fresh registry to assert in isolation. Must be called before the handler
// serves traffic: rebinding resets nothing on the old registry, it simply
// stops writing there.
func (s *Server) SetMetrics(reg *telemetry.Registry) { s.bindTelemetry(reg) }

// Metrics returns the registry the server currently publishes to.
func (s *Server) Metrics() *telemetry.Registry { return s.tele.reg }

func (s *Server) bindTelemetry(reg *telemetry.Registry) {
	t := &backendTelemetry{
		reg: reg,
		requests: reg.Counter("rockhopper_http_requests_total",
			"HTTP requests by endpoint and status code class.", "endpoint", "code"),
		timeouts: reg.Counter("rockhopper_http_timeouts_total",
			"Requests whose deadline expired while handling.", "endpoint"),
		latency: reg.Histogram("rockhopper_http_request_duration_seconds",
			"Request handling latency in seconds.", nil, "endpoint"),
		shed: reg.Counter("rockhopper_shed_total",
			"Ingest requests shed with 429 (updater queue saturated or tenant rate limit).", "endpoint"),
		tenantAdmitted: reg.Counter("rockhopper_tenant_admitted_total",
			"Events accepted for ingest, by tenant (label bounded; overflow is \"other\").", "tenant"),
		tenantShed: reg.Counter("rockhopper_tenant_shed_total",
			"Ingest requests shed with 429, by tenant and reason (rate_limit or queue_full).", "tenant", "reason"),
		tenantIngestSeconds: reg.Histogram("rockhopper_tenant_ingest_seconds",
			"Ingest request handling latency in seconds, by tenant.", nil, "tenant"),
		retrains: reg.Counter("rockhopper_updater_retrains_total",
			"Model Updater retrain passes that produced a model.").With(),
		retrainSeconds: reg.Histogram("rockhopper_updater_retrain_seconds",
			"Model retrain duration in seconds.", nil).With(),
		bestCost: reg.Gauge("rockhopper_model_best_cost_ms",
			"Best observed execution time (ms) across a signature's training traces.", "user", "signature"),
		misrouted: reg.Counter("rockhopper_fleet_misrouted_total",
			"Ingest requests bounced with 421 because another node owns the signature.", "endpoint"),
		spans: telemetry.NewSpanRing(spanRingSize),
	}
	reg.GaugeFunc("rockhopper_updater_queue_depth",
		"Model Updater jobs enqueued but not yet processed.", func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.pending)
		})
	if lener, ok := s.Store.(interface{ Len() int }); ok {
		reg.GaugeFunc("rockhopper_store_objects",
			"Objects resident in the backend object store.", func() float64 {
				return float64(lener.Len())
			})
	}
	// Re-register persisted best-cost gauges (bestCostPrefix records) so a
	// restarted daemon's dashboards keep their per-signature series instead
	// of seeing a false improvement to zero after every deploy.
	if s.Store != nil {
		for _, p := range s.Store.List(bestCostPrefix) {
			blob, err := s.Store.GetInternal(p)
			if err != nil {
				continue
			}
			var rec bestCostRecord
			if json.Unmarshal(blob, &rec) != nil || rec.User == "" || rec.Signature == "" {
				continue
			}
			//rocklint:allow metriccardinality -- boot-time restore: labels are exactly the persisted best-cost records already on disk (DESIGN.md §8 model-gauge blessing)
			t.bestCost.With(rec.User, rec.Signature).Set(rec.BestMs)
		}
	}
	s.tele = t
}

// codeClass buckets an HTTP status for the requests counter — classes keep
// the label set closed (cardinality rule, DESIGN.md §8).
func codeClass(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	case status >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// handleMetrics serves the bound registry in Prometheus text format. Like
// /api/health it is unauthenticated: scrapers don't hold cluster secrets.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.tele.reg.Handler().ServeHTTP(w, r)
}

// handleTrace serves the span ring, oldest first — the poor man's trace
// viewer for correlating a client call with backend work.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	spans := s.tele.spans.Snapshot()
	if spans == nil {
		spans = []telemetry.Span{}
	}
	writeJSON(w, spans)
}

// recordSpan appends one finished request span to the ring.
func (s *Server) recordSpan(sc telemetry.SpanContext, name string, start time.Time, dur time.Duration, code int) {
	s.tele.spans.Record(telemetry.Span{
		TraceID:    sc.TraceHex(),
		SpanID:     sc.SpanHex(),
		Name:       name,
		StartUnix:  start.UnixNano(),
		DurationMS: float64(dur) / float64(time.Millisecond),
		Status:     strconv.Itoa(code),
	})
}

func (s *Server) maxPending() int {
	if s.MaxPendingUpdates > 0 {
		return s.MaxPendingUpdates
	}
	return DefaultMaxPendingUpdates
}
