package backend

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/eventlog"
	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

// rawEventLog simulates a few executions of one query and serializes them as
// a raw Spark listener event log.
func rawEventLog(t *testing.T) []byte {
	t.Helper()
	space := sparksim.QuerySpace()
	e := sparksim.NewEngine(space)
	q := workloads.NewGenerator(3).Query(workloads.TPCDS, 2)
	r := stats.NewRNG(5)
	var buf bytes.Buffer
	for i := 0; i < 3; i++ {
		cfg := space.Random(r)
		o := e.Run(q, cfg, 1, r, noise.Low)
		o.Iteration = i
		stages, _ := e.Explain(q, cfg, 1)
		if err := eventlog.WriteRun(&buf, int64(i), space, q, o, stages, 4); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestServerConcurrentStress drives every handler the production loop touches
// — token issue, event ingest, model/object serving, and app-cache compute —
// from many goroutines at once. Run under -race it checks the Server's shared
// state (rng, sequence allocator, updater queue); the event-file count at the
// end catches the classic lost update where two ingests pick the same
// sequence number and one overwrites the other.
func TestServerConcurrentStress(t *testing.T) {
	t.Parallel()
	srv, hs := newServer(t)
	space := sparksim.QuerySpace()
	srv.Store.PutInternal("models/u/warm.model", []byte("blob"))

	var tracesBuf bytes.Buffer
	if err := flighting.WriteTraces(&tracesBuf, []flighting.Trace{{
		QueryID: "s", Config: space.Default(), DataSize: 1e9, TimeMs: 1000,
	}}); err != nil {
		t.Fatal(err)
	}
	payload := tracesBuf.Bytes()

	var obs []sparksim.Observation
	for i := 0; i < 8; i++ {
		cfg := space.With(space.Default(), sparksim.ShufflePartitions, float64(100+10*i))
		obs = append(obs, sparksim.Observation{Config: cfg, DataSize: 1e9, Time: float64(1000 + i)})
	}
	appReq, err := json.Marshal(AppCacheRequest{
		ArtifactID: "a", Current: space.Default(),
		Queries: []QueryHistory{{ID: "q", Centroid: space.Default(), Observations: obs}},
	})
	if err != nil {
		t.Fatal(err)
	}

	writeTok := srv.Store.Sign("events/", store.PermWrite, srv.TokenTTL)
	readTok := srv.Store.Sign("models/", store.PermRead, srv.TokenTTL)

	const goroutines, iters = 8, 6
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	do := func(req *http.Request, wantStatus int, what string) error {
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return fmt.Errorf("%s: %v", what, err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			return fmt.Errorf("%s: status %d, want %d", what, resp.StatusCode, wantStatus)
		}
		return nil
	}
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Token issue.
				body, _ := json.Marshal(TokenRequest{Prefix: "events/", Perm: store.PermWrite})
				req, _ := http.NewRequest("POST", hs.URL+"/api/token", bytes.NewReader(body))
				req.Header.Set(ClusterTokenHeader, secret)
				if err := do(req, http.StatusOK, "token"); err != nil {
					errs <- err
					return
				}
				// Event ingest: all goroutines share one job, contending on
				// the sequence allocator.
				url := fmt.Sprintf("%s/api/events?user=u&signature=sig%d&job_id=shared", hs.URL, g%3)
				req, _ = http.NewRequest("POST", url, bytes.NewReader(payload))
				req.Header.Set(SASTokenHeader, writeTok)
				if err := do(req, http.StatusAccepted, "events"); err != nil {
					errs <- err
					return
				}
				// Model serve.
				req, _ = http.NewRequest("GET", hs.URL+"/api/object?path=models/u/warm.model", nil)
				req.Header.Set(SASTokenHeader, readTok)
				if err := do(req, http.StatusOK, "object"); err != nil {
					errs <- err
					return
				}
				// App-cache compute exercises the server's shared RNG; the
				// query-level space has no app params, so 422 is the
				// expected (fully processed) outcome.
				req, _ = http.NewRequest("POST", hs.URL+"/api/appcache", bytes.NewReader(appReq))
				req.Header.Set(ClusterTokenHeader, secret)
				if err := do(req, http.StatusUnprocessableEntity, "appcache"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	srv.Flush()
	if n := len(srv.Store.List("events/shared/")); n != goroutines*iters {
		t.Fatalf("event files = %d, want %d (concurrent ingests lost updates)", n, goroutines*iters)
	}
}

// TestEventLogConcurrentIngest posts raw event logs concurrently; each log
// fans out into per-signature event files through the same sequence
// allocator.
func TestEventLogConcurrentIngest(t *testing.T) {
	t.Parallel()
	srv, hs := newServer(t)
	logBlob := rawEventLog(t)
	writeTok := srv.Store.Sign("events/", store.PermWrite, srv.TokenTTL)

	const goroutines = 6
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequest("POST", hs.URL+"/api/eventlog?user=u&job_id=logjob", bytes.NewReader(logBlob))
			req.Header.Set(SASTokenHeader, writeTok)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				errs <- fmt.Errorf("eventlog: status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	srv.Flush()
	if n := len(srv.Store.List("events/logjob/")); n != goroutines {
		t.Fatalf("event files = %d, want %d", n, goroutines)
	}
}
