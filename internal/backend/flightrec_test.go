package backend

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/flightrec"
)

// TestFlightRecorderSLOBreachDump forces an SLO breach (an objective of 1ns
// makes every request a breach) and walks the whole black-box path: the
// breach event lands in the live ring served at /api/flightrec, the ring
// snapshots itself to the data dir exactly once, and the snapshot replays
// from disk into a readable timeline.
func TestFlightRecorderSLOBreachDump(t *testing.T) {
	srv, hs := newServer(t)
	dir := t.TempDir()
	base := time.Unix(1700000000, 0)
	n := 0
	// Injected clock: the recorder stamps events without the wall clock.
	clock := func() time.Time {
		n++
		return base.Add(time.Duration(n) * 100 * time.Millisecond)
	}
	srv.NodeName = "n1"
	srv.SLOLatency = time.Nanosecond
	srv.SetFlightRecorder(flightrec.New(64, "n1", dir, clock))

	// Any instrumented request now breaches the 1ns objective (health and
	// metrics are uninstrumented by design, so probe an API endpoint).
	resp, err := http.Get(hs.URL + "/api/object?path=models/u/x.model")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Live ring over HTTP.
	fr, err := http.Get(hs.URL + "/api/flightrec")
	if err != nil {
		t.Fatal(err)
	}
	defer fr.Body.Close()
	var live flightrec.Snapshot
	if err := json.NewDecoder(fr.Body).Decode(&live); err != nil {
		t.Fatalf("/api/flightrec payload: %v", err)
	}
	if live.Node != "n1" || live.Reason != "live" {
		t.Fatalf("live snapshot header = %q/%q", live.Node, live.Reason)
	}
	breach := false
	for _, ev := range live.Events {
		if ev.Level == flightrec.LevelWarn && strings.Contains(ev.Message, "SLO breach") {
			breach = true
		}
	}
	if !breach {
		t.Fatalf("live ring lost the breach event: %+v", live.Events)
	}

	// The breach dumped the ring once; the snapshot replays readably.
	matches, err := filepath.Glob(filepath.Join(dir, "flightrec-slo_breach-*.json"))
	if err != nil || len(matches) != 1 {
		files, _ := os.ReadDir(dir)
		t.Fatalf("want exactly 1 slo_breach snapshot, got %v (%d files in dir)", matches, len(files))
	}
	snap, err := flightrec.Load(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	flightrec.Render(&out, snap)
	text := out.String()
	if !strings.Contains(text, "reason=slo_breach") || !strings.Contains(text, "SLO breach: get_object took") {
		t.Errorf("replayed timeline unreadable:\n%s", text)
	}

	// A second breach must not re-dump: the first snapshot is the evidence.
	resp, err = http.Get(hs.URL + "/api/object?path=models/u/x.model")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	matches, _ = filepath.Glob(filepath.Join(dir, "flightrec-slo_breach-*.json"))
	if len(matches) != 1 {
		t.Fatalf("second breach re-dumped: %v", matches)
	}
}
