package backend

import (
	"math"

	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/flightrec"
	"github.com/rockhopper-db/rockhopper/internal/ml"
	"github.com/rockhopper-db/rockhopper/internal/monitor"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
	"github.com/rockhopper-db/rockhopper/internal/tuners"
)

// observeDrift feeds a signature's Page-Hinkley detector the residuals of
// the currently-serving model against training traces the detector has not
// yet consumed, then publishes the rockhopper_signature_drift_* gauges. It
// runs BEFORE the retrain fits a replacement model, so the residual stream
// measures how far reality moved away from the model that was actually
// serving predictions — retraining afterwards does not erase the evidence.
// Fed only from the single updater goroutine; driftMu is held across the
// whole pass because DriftState may read a detector concurrently.
func (s *Server) observeDrift(sc telemetry.SpanContext, user, signature string, traces []flighting.Trace) {
	key := user + "\x00" + signature
	s.driftMu.Lock()
	defer s.driftMu.Unlock()
	det := s.drift[key]
	if det == nil {
		det = &monitor.DriftDetector{}
		s.drift[key] = det
	}
	fed := s.driftFed[key]
	publish := func() {
		s.driftFed[key] = len(traces)
		state := 0.0
		if det.Drifting() {
			state = 1
		}
		//rocklint:allow metriccardinality -- drift gauges share the model store's user/signature label set, blessed for model gauges in DESIGN.md §8
		s.tele.driftScore.With(user, signature).Set(det.Score())
		//rocklint:allow metriccardinality -- same §8 model-gauge blessing as the drift score
		s.tele.driftState.With(user, signature).Set(state)
	}
	if fed >= len(traces) {
		publish()
		return
	}
	// Residuals only make sense against a model that was serving; before the
	// first fit there is nothing to drift from, so those traces are skipped
	// (marked consumed) rather than scored against a later model.
	blob, err := s.Store.GetInternal(store.ModelPath(user, signature))
	if err != nil {
		publish()
		return
	}
	model, err := ml.Unmarshal(blob)
	if err != nil {
		s.logfCtx(sc, "backend: drift check %s/%s: stored model unreadable: %v", user, signature, err)
		publish()
		return
	}
	wasDrifting := det.Drifting()
	for _, t := range traces[fed:] {
		pred := model.Predict(tuners.ConfigFeatures(s.Space, nil, t.Config, t.DataSize))
		det.Observe(math.Log1p(t.TimeMs) - pred)
	}
	publish()
	if !wasDrifting && det.Drifting() {
		s.logfCtx(sc, "backend: model drift detected for %s/%s (score %.3f over %d residuals)",
			user, signature, det.Score(), det.Samples())
		s.flightRec.Eventf(flightrec.LevelWarn, "updater", sc,
			"model drift detected for %s/%s (score %.3f over %d residuals)",
			user, signature, det.Score(), det.Samples())
	}
}

// DriftState reports a signature's drift detector state and score — the
// programmatic twin of the rockhopper_signature_drift_* gauges, used by
// tests and by the Manager's guardrail-trip attribution.
func (s *Server) DriftState(user, signature string) (drifting bool, score float64) {
	s.driftMu.Lock()
	defer s.driftMu.Unlock()
	det := s.drift[user+"\x00"+signature]
	if det == nil {
		return false, 0
	}
	return det.Drifting(), det.Score()
}
