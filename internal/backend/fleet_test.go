package backend

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/store"
)

// stubFleet is a FleetHooks double: ownership by signature prefix, and a
// programmable replication-wait outcome.
type stubFleet struct {
	ownURL  string
	mine    func(sig string) bool
	replErr error
}

func (s stubFleet) OwnerOf(sig string) (string, bool) {
	if s.mine(sig) {
		return s.ownURL, true
	}
	return s.ownURL, false
}

func (s stubFleet) AwaitReplication(ctx context.Context) error { return s.replErr }

func traceBody(t *testing.T, sigs ...string) *bytes.Buffer {
	t.Helper()
	space := sparksim.QuerySpace()
	var traces []flighting.Trace
	for _, sig := range sigs {
		traces = append(traces, flighting.Trace{
			QueryID: sig, Config: space.Default(), DataSize: 1, TimeMs: 100,
		})
	}
	var buf bytes.Buffer
	if err := flighting.WriteTraces(&buf, traces); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func postTraces(t *testing.T, srv *Server, hs string, url string, body *bytes.Buffer) *http.Response {
	t.Helper()
	tok := srv.Store.Sign("events/", store.PermWrite, srv.TokenTTL)
	req, err := http.NewRequest(http.MethodPost, hs+url, body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(SASTokenHeader, tok)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestFleetMisroutedIngestBounces(t *testing.T) {
	srv, hs := newServer(t)
	srv.SetFleet(stubFleet{
		ownURL: "http://owner.example",
		mine:   func(sig string) bool { return strings.HasPrefix(sig, "mine-") },
	})

	resp := postTraces(t, srv, hs.URL, "/api/events?user=u&signature=theirs-1&job_id=j", traceBody(t, "theirs-1"))
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("misrouted event: status = %d, want 421", resp.StatusCode)
	}
	var mr MisroutedResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	if mr.Owner != "http://owner.example" || mr.Signature != "theirs-1" {
		t.Fatalf("misroute body = %+v", mr)
	}
	if n := len(srv.Store.List("events/")); n != 0 {
		t.Fatalf("misrouted ingest persisted %d files", n)
	}

	resp = postTraces(t, srv, hs.URL, "/api/events?user=u&signature=mine-1&job_id=j", traceBody(t, "mine-1"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("owned event: status = %d, want 202", resp.StatusCode)
	}
}

func TestFleetBatchMustBeWhollyOwned(t *testing.T) {
	srv, hs := newServer(t)
	srv.SetFleet(stubFleet{
		ownURL: "http://owner.example",
		mine:   func(sig string) bool { return strings.HasPrefix(sig, "mine-") },
	})

	// One foreign signature poisons the whole batch: nothing may persist.
	resp := postTraces(t, srv, hs.URL, "/api/events/batch?user=u&job_id=j",
		traceBody(t, "mine-1", "theirs-1", "mine-2"))
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("mixed batch: status = %d, want 421", resp.StatusCode)
	}
	if n := len(srv.Store.List("events/")); n != 0 {
		t.Fatalf("bounced batch persisted %d files", n)
	}

	resp = postTraces(t, srv, hs.URL, "/api/events/batch?user=u&job_id=j",
		traceBody(t, "mine-1", "mine-2"))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("owned batch: status = %d, want 202", resp.StatusCode)
	}
}

func TestFleetReplicationFailureFailsTheAck(t *testing.T) {
	srv, hs := newServer(t)
	srv.SetFleet(stubFleet{
		ownURL:  "http://self.example",
		mine:    func(string) bool { return true },
		replErr: errors.New("followers unreachable"),
	})

	resp := postTraces(t, srv, hs.URL, "/api/events?user=u&signature=s&job_id=j", traceBody(t, "s"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unreplicated event: status = %d, want 503", resp.StatusCode)
	}

	resp = postTraces(t, srv, hs.URL, "/api/events/batch?user=u&job_id=j", traceBody(t, "s"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unreplicated batch: status = %d, want 503", resp.StatusCode)
	}
}
