package backend

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/resilience"
	"github.com/rockhopper-db/rockhopper/internal/resilience/faultinject"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// sigTraces builds perSig traces for each signature, round-robin, so a batch
// body spans several signatures the way a real multi-query app run does.
func sigTraces(sigs []string, perSig int, seed uint64) []flighting.Trace {
	base := traceBatch(len(sigs)*perSig, seed)
	for i := range base {
		base[i].QueryID = sigs[i%len(sigs)]
	}
	return base
}

// postBatch ships traces to POST /api/events/batch. Unlike postTracedEvents
// it returns errors instead of calling t.Fatal, so stress tests can hammer
// it from many goroutines.
func postBatch(srv *Server, hs, user, jobID string, traces []flighting.Trace) (int, *BatchResponse, error) {
	tok := srv.Store.Sign("events/", store.PermWrite, srv.TokenTTL)
	var buf bytes.Buffer
	if err := flighting.WriteTraces(&buf, traces); err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequest("POST", hs+"/api/events/batch?user="+user+"&job_id="+jobID, &buf)
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set(SASTokenHeader, tok)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return resp.StatusCode, nil, nil
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, &br, nil
}

// tenantEventCount walks a tenant's signature index and counts the traces in
// every event file it references — the store-side truth for "events this
// tenant was acknowledged for".
func tenantEventCount(t *testing.T, st ObjectStore, user string) int {
	t.Helper()
	total := 0
	prefix := "index/" + user + "/"
	for _, p := range st.List(prefix) {
		rest := p[len(prefix):]
		slash := strings.IndexByte(rest, '/')
		if slash < 0 {
			t.Fatalf("malformed index path %q", p)
		}
		jobID, seq, err := parseIndexEntry(rest[slash+1:])
		if err != nil {
			t.Fatalf("index entry %q: %v", p, err)
		}
		blob, err := st.GetInternal(store.EventPath(jobID, seq))
		if err != nil {
			t.Fatalf("index entry %q points at unreadable event file: %v", p, err)
		}
		traces, err := flighting.ReadTraces(bytesReader(blob))
		if err != nil {
			t.Fatalf("corrupt event file behind %q: %v", p, err)
		}
		total += len(traces)
	}
	return total
}

// histP99 computes a scraped histogram's p99 upper bound from its cumulative
// buckets, filtered to one tenant label.
func histP99(t *testing.T, fams []telemetry.Family, name, tenant string) float64 {
	t.Helper()
	fam, ok := telemetry.Find(fams, name)
	if !ok {
		t.Fatalf("histogram %s missing from scrape", name)
	}
	type bkt struct {
		le  float64
		cum float64
	}
	var buckets []bkt
	var count float64
	for _, s := range fam.Series {
		if s.Labels["tenant"] != tenant {
			continue
		}
		switch s.Name {
		case name + "_bucket":
			le, err := strconv.ParseFloat(s.Labels["le"], 64)
			if err != nil {
				t.Fatalf("bucket le %q: %v", s.Labels["le"], err)
			}
			buckets = append(buckets, bkt{le: le, cum: s.Value})
		case name + "_count":
			count = s.Value
		}
	}
	if count == 0 || len(buckets) == 0 {
		t.Fatalf("histogram %s has no samples for tenant %q", name, tenant)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].le < buckets[j].le })
	need := 0.99 * count
	for _, b := range buckets {
		if b.cum >= need {
			return b.le
		}
	}
	return math.Inf(1)
}

// TestFairQueueWeightedRoundRobin pins the scheduling law: equal-weight
// tenants alternate one job per turn regardless of backlog depth, and a
// weighted tenant drains weight jobs per turn.
func TestFairQueueWeightedRoundRobin(t *testing.T) {
	job := func(sig string) updateJob { return updateJob{signature: sig} }
	popSig := func(q *fairQueue) string {
		j, ok := q.pop()
		if !ok {
			t.Fatal("pop on non-empty queue returned nothing")
		}
		return j.signature
	}

	var q fairQueue
	// noisy floods 4 jobs before quiet enqueues 2.
	for i := 0; i < 4; i++ {
		q.push("noisy", job(fmt.Sprintf("n%d", i)))
	}
	q.push("quiet", job("q0"))
	q.push("quiet", job("q1"))
	want := []string{"n0", "q0", "n1", "q1", "n2", "n3"}
	for i, w := range want {
		if got := popSig(&q); got != w {
			t.Fatalf("equal-weight pop %d = %q, want %q", i, got, w)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("drained queue still pops")
	}

	// A weight-2 tenant takes two jobs per rotation.
	var wq fairQueue
	wq.setWeight("heavy", 2)
	for i := 0; i < 4; i++ {
		wq.push("heavy", job(fmt.Sprintf("h%d", i)))
	}
	wq.push("light", job("l0"))
	wq.push("light", job("l1"))
	want = []string{"h0", "h1", "l0", "h2", "h3", "l1"}
	for i, w := range want {
		if got := popSig(&wq); got != w {
			t.Fatalf("weighted pop %d = %q, want %q", i, got, w)
		}
	}
	// The weighted tenant's sub-queue survives drain (its weight must too);
	// the default-weight tenant is pruned.
	if _, ok := wq.queues["heavy"]; !ok {
		t.Error("weighted tenant pruned on drain — its weight is lost")
	}
	if _, ok := wq.queues["light"]; ok {
		t.Error("default-weight tenant retained on drain — the map would grow unbounded")
	}
}

// TestTenantRateLimit drives the token bucket through drain, shed, and
// refill on a fake clock, and checks the per-tenant admitted/shed counters.
func TestTenantRateLimit(t *testing.T) {
	srv, hs := newServer(t)
	fc := resilience.NewFakeClock(time.Unix(50000, 0))
	srv.SetClock(fc)
	srv.TenantRate = 1 // 1 event/second
	srv.TenantBurst = 4

	// 4 traces drain the burst exactly.
	if code := postTracedEvents(t, srv, hs.URL, nil, 4); code != http.StatusAccepted {
		t.Fatalf("first batch status = %d, want 202", code)
	}
	// The bucket is empty: the next single trace sheds with Retry-After.
	tok := srv.Store.Sign("events/", store.PermWrite, srv.TokenTTL)
	var buf bytes.Buffer
	if err := flighting.WriteTraces(&buf, traceBatch(1, 9)); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("POST", hs.URL+"/api/events?user=u&signature=s&job_id=j", &buf)
	req.Header.Set(SASTokenHeader, tok)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("drained-bucket status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("rate-limited 429 without Retry-After")
	}
	if got := srv.tele.tenantShed.With("u", "rate_limit").Value(); got != 1 {
		t.Errorf("tenant shed(rate_limit) = %v, want 1", got)
	}

	// Four fake seconds refill four tokens.
	fc.Advance(4 * time.Second)
	if code := postTracedEvents(t, srv, hs.URL, nil, 4); code != http.StatusAccepted {
		t.Fatalf("post-refill status = %d, want 202", code)
	}
	if got := srv.tele.tenantAdmitted.With("u").Value(); got != 8 {
		t.Errorf("tenant admitted = %v, want 8", got)
	}
	srv.Flush()
}

// TestEventBatchEndpoint: one POST /api/events/batch spanning two signatures
// lands both event files and both index entries, triggers both retrains, and
// accounts every trace to the tenant.
func TestEventBatchEndpoint(t *testing.T) {
	srv, hs := newServer(t)
	traces := sigTraces([]string{"sigA", "sigB"}, 4, 3)
	code, br, err := postBatch(srv, hs.URL, "u", "j", traces)
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusAccepted {
		t.Fatalf("batch status = %d, want 202", code)
	}
	if br.Signatures != 2 || br.Events != 8 {
		t.Fatalf("batch response = %+v, want 2 signatures / 8 events", br)
	}
	if got := len(srv.Store.List("events/j/")); got != 2 {
		t.Errorf("event files = %d, want 2 (one per signature)", got)
	}
	for _, sig := range []string{"sigA", "sigB"} {
		if got := len(srv.Store.List("index/u/" + sig + "/")); got != 1 {
			t.Errorf("index entries for %s = %d, want 1", sig, got)
		}
	}
	srv.Flush()
	for _, sig := range []string{"sigA", "sigB"} {
		if _, err := srv.Store.GetInternal(store.ModelPath("u", sig)); err != nil {
			t.Errorf("no model for %s after flush: %v", sig, err)
		}
	}
	if got := srv.tele.tenantAdmitted.With("u").Value(); got != 8 {
		t.Errorf("tenant admitted = %v, want 8", got)
	}
	if got := tenantEventCount(t, srv.Store, "u"); got != 8 {
		t.Errorf("indexed tenant events = %d, want 8", got)
	}
}

// TestEventBatchValidation pins the endpoint's reject paths: missing params,
// empty body, and traces without a queryId signature key.
func TestEventBatchValidation(t *testing.T) {
	srv, hs := newServer(t)
	if code, _, _ := postBatch(srv, hs.URL, "", "j", sigTraces([]string{"s"}, 1, 3)); code != http.StatusBadRequest {
		t.Errorf("missing user status = %d, want 400", code)
	}
	if code, _, _ := postBatch(srv, hs.URL, "u", "j", nil); code != http.StatusUnprocessableEntity {
		t.Errorf("empty batch status = %d, want 422", code)
	}
	bad := sigTraces([]string{"s"}, 2, 3)
	bad[1].QueryID = ""
	if code, _, _ := postBatch(srv, hs.URL, "u", "j", bad); code != http.StatusBadRequest {
		t.Errorf("unsigned trace status = %d, want 400", code)
	}
	// Nothing was persisted by the rejects.
	if got := len(srv.Store.List("events/")); got != 0 {
		t.Errorf("rejected batches left %d event files", got)
	}
}

// TestEventBatchFallbackStore routes the batch through a store wrapper with
// no PutBatch, exercising the two-phase per-entry path.
func TestEventBatchFallbackStore(t *testing.T) {
	wrapped := &faultinject.Store{Inner: store.New([]byte("key"))}
	srv := New(sparksim.QuerySpace(), wrapped, secret, 1)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })

	if _, ok := srv.Store.(batchPutter); ok {
		t.Fatal("faultinject wrapper unexpectedly exposes PutBatch; the fallback path is untested")
	}
	code, br, err := postBatch(srv, hs.URL, "u", "j", sigTraces([]string{"sigA", "sigB"}, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if code != http.StatusAccepted || br.Signatures != 2 || br.Events != 8 {
		t.Fatalf("fallback batch: code=%d resp=%+v, want 202 with 2/8", code, br)
	}
	srv.Flush()
	if got := tenantEventCount(t, srv.Store, "u"); got != 8 {
		t.Errorf("fallback indexed events = %d, want 8", got)
	}
}

// TestEventBatchCrashAtomicity tears the WAL mid-batch-record: the client
// gets a 5xx (not a 202), and recovery surfaces none of the batch — no event
// files, no index entries. All-or-nothing.
func TestEventBatchCrashAtomicity(t *testing.T) {
	dir := t.TempDir()
	armed := true
	st, err := store.OpenDurable(dir, []byte("key"), store.DurableOptions{
		NoSync: true,
		Hooks: func(p store.CrashPoint) error {
			if p == store.CrashMidRecord && armed {
				armed = false
				return fmt.Errorf("injected crash")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(sparksim.QuerySpace(), st, secret, 1)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })

	code, _, err := postBatch(srv, hs.URL, "u", "j", sigTraces([]string{"sigA", "sigB"}, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	if code < 500 {
		t.Fatalf("torn batch status = %d, want 5xx", code)
	}
	// Recover from disk: the torn record is discarded wholesale.
	rec, err := store.OpenDurable(dir, []byte("key"), store.DurableOptions{NoSync: true})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer rec.Close()
	if got := len(rec.List("events/")); got != 0 {
		t.Errorf("recovered store has %d event files from a torn batch, want 0", got)
	}
	if got := len(rec.List("index/")); got != 0 {
		t.Errorf("recovered store has %d index entries from a torn batch, want 0", got)
	}
}

// TestEnqueueCloseRaceRegression hammers the admission/enqueue path against
// Close. The old implementation enqueued by sending on a channel that Close
// concurrently closed — under -race (or just bad luck) that paniced with
// "send on closed channel". The fixed path does everything under one mutex,
// so this must run clean.
func TestEnqueueCloseRaceRegression(t *testing.T) {
	for round := 0; round < 20; round++ {
		srv := New(sparksim.QuerySpace(), store.New([]byte("key")), secret, 1)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					if srv.tryAdmit(1) {
						srv.enqueueReserved(updateJob{user: fmt.Sprintf("u%d", g), signature: "s"})
					}
				}
			}(g)
		}
		srv.Close() // races the enqueues above
		wg.Wait()
	}
}

// TestAdmissionReservationNoOvershoot is the TOCTOU regression test: with
// MaxPendingUpdates=4 and 16 goroutines posting concurrently, the observed
// pending high-water mark must never exceed 4. The old check-then-enqueue
// read the depth without holding the reservation, so concurrent requests all
// passed the stale check and overshot the bound.
func TestAdmissionReservationNoOvershoot(t *testing.T) {
	srv, hs := newServer(t)
	srv.MaxPendingUpdates = 4

	traces := sigTraces([]string{"s"}, 4, 3)
	var wg sync.WaitGroup
	var mu sync.Mutex
	shed := 0
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				code, _, err := postBatch(srv, hs.URL, fmt.Sprintf("u%d", g), fmt.Sprintf("j%d", g), traces)
				if err != nil {
					t.Error(err)
					return
				}
				if code == http.StatusTooManyRequests {
					mu.Lock()
					shed++
					mu.Unlock()
				} else if code != http.StatusAccepted {
					t.Errorf("unexpected status %d", code)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	srv.Flush()
	srv.mu.Lock()
	peak := srv.peakPending
	srv.mu.Unlock()
	if peak > 4 {
		t.Errorf("peak pending = %d, want <= MaxPendingUpdates (4) — admission overshoot", peak)
	}
	if peak == 0 {
		t.Error("peak pending = 0; the test admitted nothing and proves nothing")
	}
	t.Logf("peak=%d shed=%d", peak, shed)
}

// TestHostileTenantStress is the multi-tenant SLO test: one hostile tenant
// floods batches until it is shed, while three well-behaved tenants ingest
// within their budget. All SLO traffic must land 202 with bounded p99, the
// hostile tenant must see 429s, and after a kill/restart the store must hold
// exactly the events each tenant was acknowledged for — zero loss, zero
// phantom.
func TestHostileTenantStress(t *testing.T) {
	dir := t.TempDir()
	st, err := store.OpenDurable(dir, []byte("key"), store.DurableOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(sparksim.QuerySpace(), st, secret, 1)
	srv.TenantRate = 100
	srv.TenantBurst = 120
	hs := httptest.NewServer(srv.Handler())

	traces2 := sigTraces([]string{"sigA", "sigB"}, 4, 3) // 8 events, 2 sigs
	traces1 := sigTraces([]string{"sigC"}, 4, 5)         // 4 events, 1 sig

	acked := make(map[string]int) // tenant -> acknowledged events
	var mu sync.Mutex
	var wg sync.WaitGroup

	// Hostile tenant: flood until shed (or a generous cap — rate 100/s with
	// burst 120 sheds a tight loop of 8-event batches almost immediately).
	hostileShed := false
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			code, _, err := postBatch(srv, hs.URL, "hostile", "jh", traces2)
			if err != nil {
				t.Error(err)
				return
			}
			switch code {
			case http.StatusAccepted:
				mu.Lock()
				acked["hostile"] += 8
				mu.Unlock()
			case http.StatusTooManyRequests:
				mu.Lock()
				hostileShed = true
				mu.Unlock()
				return
			default:
				t.Errorf("hostile post status %d", code)
				return
			}
		}
	}()

	// SLO tenants: 15 posts of 4 events each = 60 events, well under the
	// 120 burst — every one must be accepted even while hostile floods.
	for _, tenant := range []string{"slo1", "slo2", "slo3"} {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				code, _, err := postBatch(srv, hs.URL, tenant, "j"+tenant, traces1)
				if err != nil {
					t.Error(err)
					return
				}
				if code != http.StatusAccepted {
					t.Errorf("SLO tenant %s shed with %d on post %d", tenant, code, i)
					return
				}
				mu.Lock()
				acked[tenant] += 4
				mu.Unlock()
			}
		}(tenant)
	}
	wg.Wait()
	srv.Flush()

	if !hostileShed {
		t.Error("hostile tenant was never rate-limited")
	}
	fams := scrape(t, hs.URL)
	if shed, ok := telemetry.Find(fams, "rockhopper_tenant_shed_total"); !ok {
		t.Error("tenant shed counter missing from scrape")
	} else {
		found := false
		for _, s := range shed.Series {
			if s.Labels["tenant"] == "hostile" && s.Value > 0 {
				found = true
			}
		}
		if !found {
			t.Errorf("no shed series for hostile tenant: %+v", shed.Series)
		}
	}
	for _, tenant := range []string{"slo1", "slo2", "slo3"} {
		if p99 := histP99(t, fams, "rockhopper_tenant_ingest_seconds", tenant); p99 > 2.5 {
			t.Errorf("tenant %s ingest p99 bound = %vs, want <= 2.5s", tenant, p99)
		}
	}

	// Kill: drop the server and the HTTP front end WITHOUT closing the store
	// cleanly, then recover from disk. Every acknowledged event must be
	// there; nothing more.
	hs.Close()
	srv.Close()
	rec, err := store.OpenDurable(dir, []byte("key"), store.DurableOptions{NoSync: true})
	if err != nil {
		t.Fatalf("recovery open: %v", err)
	}
	defer rec.Close()
	for tenant, want := range acked {
		if got := tenantEventCount(t, rec, tenant); got != want {
			t.Errorf("tenant %s: recovered %d events, acknowledged %d — %s",
				tenant, got, want, map[bool]string{true: "acknowledged loss", false: "phantom events"}[got < want])
		}
	}
}

// TestBestCostGaugeSurvivesRestart: the per-signature best-cost gauge is
// persisted with the model and re-registered on boot, so a restarted
// daemon's dashboards don't see a false improvement to zero.
func TestBestCostGaugeSurvivesRestart(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "data")
	st, err := store.OpenDurable(dir, []byte("key"), store.DurableOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(sparksim.QuerySpace(), st, secret, 1)
	hs := httptest.NewServer(srv.Handler())
	if code := postTracedEvents(t, srv, hs.URL, nil, 8); code != http.StatusAccepted {
		t.Fatalf("ingest status = %d", code)
	}
	srv.Flush()
	want := srv.tele.bestCost.With("u", "s").Value()
	if want <= 0 {
		t.Fatalf("best cost after retrain = %v, want > 0", want)
	}
	hs.Close()
	srv.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: fresh store handle, fresh server, fresh registry.
	st2, err := store.OpenDurable(dir, []byte("key"), store.DurableOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(sparksim.QuerySpace(), st2, secret, 1)
	t.Cleanup(func() { srv2.Close(); st2.Close() })
	if got := srv2.tele.bestCost.With("u", "s").Value(); got != want {
		t.Errorf("restarted best cost = %v, want %v (restored from the store)", got, want)
	}
	// Rebinding onto another registry restores again.
	srv2.SetMetrics(telemetry.NewRegistry())
	if got := srv2.tele.bestCost.With("u", "s").Value(); got != want {
		t.Errorf("rebound best cost = %v, want %v", got, want)
	}
}
