package backend

import (
	"math"
	"net/http"
	"strconv"
	"time"
)

// Per-tenant admission: a token bucket per tenant gates how many events a
// tenant may ingest per second, and an atomic slot reservation gates the
// shared Model Updater backlog. Both shed with 429 + Retry-After so the
// client's retry classifier backs off instead of hammering.

// DefaultTenantBurst is the token-bucket capacity when TenantBurst is unset.
const DefaultTenantBurst = 256

// maxTrackedTenants bounds the bucket map: once this many distinct tenants
// are tracked, further unseen tenant names share one overflow bucket, so a
// hostile flood of fresh names can neither grow memory nor dodge the limit.
const maxTrackedTenants = 4096

// maxTenantLabelValues bounds per-tenant metric cardinality (DESIGN.md §8):
// the first N distinct tenants get their own label value, the rest share
// overflowTenant.
const maxTenantLabelValues = 64

// overflowTenant is the shared label/bucket key past the tracking caps.
const overflowTenant = "other"

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// admitTenant charges cost events against the tenant's token bucket.
// Rate limiting is off while TenantRate <= 0. A cost above the burst is
// clamped to it so one oversized batch still passes when the bucket is
// full rather than being unservable forever.
func (s *Server) admitTenant(user string, cost float64) (ok bool, retryAfter time.Duration) {
	rate := s.TenantRate
	if rate <= 0 {
		return true, 0
	}
	burst := s.TenantBurst
	if burst <= 0 {
		burst = DefaultTenantBurst
	}
	cost = math.Min(math.Max(cost, 1), burst)
	now := s.clock().Now()

	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	if s.buckets == nil {
		s.buckets = make(map[string]*tokenBucket)
	}
	key := user
	if _, seen := s.buckets[key]; !seen && len(s.buckets) >= maxTrackedTenants {
		key = overflowTenant
	}
	b := s.buckets[key]
	if b == nil {
		b = &tokenBucket{tokens: burst, last: now}
		s.buckets[key] = b
	}
	b.tokens = math.Min(burst, b.tokens+rate*now.Sub(b.last).Seconds())
	b.last = now
	if b.tokens >= cost {
		b.tokens -= cost
		return true, 0
	}
	return false, time.Duration((cost - b.tokens) / rate * float64(time.Second))
}

// tenantLabel maps a raw user to a bounded metric label value.
func (s *Server) tenantLabel(user string) string {
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	if s.tenantLabels == nil {
		s.tenantLabels = make(map[string]bool)
	}
	if s.tenantLabels[user] {
		return user
	}
	if len(s.tenantLabels) >= maxTenantLabelValues {
		return overflowTenant
	}
	s.tenantLabels[user] = true
	return user
}

// SetTenantWeight fixes a tenant's share of the Model Updater: a tenant
// with weight w drains up to w jobs per rotation (default 1). Daemons set
// this from -tenant-weights before serving traffic.
func (s *Server) SetTenantWeight(user string, weight int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queue.setWeight(user, weight)
}

// tryAdmit atomically reserves n Model Updater slots. This is the fixed
// admission path: check and reservation happen under one critical section,
// so concurrent requests can never all pass a stale check and overshoot
// MaxPendingUpdates the way the old read-then-enqueue sequence could.
// Callers must releaseAdmit any reserved slot they fail to enqueue.
func (s *Server) tryAdmit(n int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.pending+n > s.maxPending() {
		return false
	}
	s.pending += n
	if s.pending > s.peakPending {
		s.peakPending = s.pending
	}
	return true
}

// releaseAdmit returns n reserved slots (failure path between admission and
// enqueue).
func (s *Server) releaseAdmit(n int) {
	s.mu.Lock()
	s.pending -= n
	s.cond.Broadcast()
	s.mu.Unlock()
}

// shedQueueFull answers 429 for a saturated updater backlog.
func (s *Server) shedQueueFull(w http.ResponseWriter, endpoint, user string) {
	s.tele.shed.With(endpoint).Inc()
	s.tele.tenantShed.With(s.tenantLabel(user), "queue_full").Inc()
	w.Header().Set("Retry-After", "1")
	http.Error(w, "model updater queue saturated; retry later", http.StatusTooManyRequests)
}

// shedRateLimited answers 429 for an exhausted tenant token bucket, with
// Retry-After rounded up to whole seconds.
func (s *Server) shedRateLimited(w http.ResponseWriter, endpoint, user string, retryAfter time.Duration) {
	s.tele.shed.With(endpoint).Inc()
	s.tele.tenantShed.With(s.tenantLabel(user), "rate_limit").Inc()
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	http.Error(w, "tenant rate limit exceeded; retry later", http.StatusTooManyRequests)
}

// observeIngest records one ingest request's handling latency on the
// tenant-labeled series and counts its admitted events.
func (s *Server) observeIngest(user string, start time.Time, admitted int) {
	label := s.tenantLabel(user)
	s.tele.tenantIngestSeconds.With(label).Observe(s.clock().Now().Sub(start).Seconds())
	if admitted > 0 {
		s.tele.tenantAdmitted.With(label).Add(float64(admitted))
	}
}
