package backend

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/eventlog"
	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/resilience/faultinject"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

func TestParseIndexEntry(t *testing.T) {
	cases := []struct {
		rest    string
		jobID   string
		seq     int
		wantErr bool
	}{
		{"job-1-000042", "job-1", 42, false},
		{"j-000000", "j", 0, false},
		// The %06d zero-padding overflows gracefully past 999999; parsing
		// must not corrupt the jobID or skip the entry.
		{"job-arch-1234567", "job-arch", 1234567, false},
		{"my-long-job-name-1000000", "my-long-job-name", 1000000, false},
		{"noseparator", "", 0, true},
		{"job-", "", 0, true},
		{"-42", "", 0, true},
		{"job-notanumber", "", 0, true},
	}
	for _, c := range cases {
		jobID, seq, err := parseIndexEntry(c.rest)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseIndexEntry(%q) should fail, got %q/%d", c.rest, jobID, seq)
			}
			continue
		}
		if err != nil || jobID != c.jobID || seq != c.seq {
			t.Errorf("parseIndexEntry(%q) = %q, %d, %v; want %q, %d", c.rest, jobID, seq, err, c.jobID, c.seq)
		}
	}
}

// traceBatch builds n valid training traces for one signature.
func traceBatch(n int, seed uint64) []flighting.Trace {
	space := sparksim.QuerySpace()
	e := sparksim.NewEngine(space)
	q := workloads.NewGenerator(seed).Query(workloads.TPCDS, 2)
	r := stats.NewRNG(seed)
	out := make([]flighting.Trace, 0, n)
	for i := 0; i < n; i++ {
		o := e.Run(q, space.Random(r), 1, r, noise.Low)
		out = append(out, flighting.Trace{QueryID: "s", Config: o.Config, DataSize: o.DataSize, TimeMs: o.Time})
	}
	return out
}

// TestRetrainSeqBeyondMillion is the regression test for the fixed-width
// index parsing bug: once a job exceeds 999999 event files the old
// "%06d"-strip corrupted jobID/seq and silently dropped the entry, so the
// model never saw that data.
func TestRetrainSeqBeyondMillion(t *testing.T) {
	srv, _ := newServer(t)
	const (
		user  = "u"
		sig   = "s"
		jobID = "job-big" // contains '-' on purpose
		seq   = 1234567
	)
	var buf bytes.Buffer
	if err := flighting.WriteTraces(&buf, traceBatch(8, 3)); err != nil {
		t.Fatal(err)
	}
	srv.Store.PutInternal(store.EventPath(jobID, seq), buf.Bytes())
	srv.Store.PutInternal(signatureIndexPath(user, sig, jobID, seq), nil)
	srv.retrain(updateJob{user: user, signature: sig})
	if _, err := srv.Store.GetInternal(store.ModelPath(user, sig)); err != nil {
		t.Fatalf("retrain dropped the seq=%d index entry: %v", seq, err)
	}
}

// rawTwoSigLog serializes runs of two distinct queries, so eventlog ingest
// produces two signature batches.
func rawTwoSigLog(t *testing.T) []byte {
	t.Helper()
	space := sparksim.QuerySpace()
	e := sparksim.NewEngine(space)
	gen := workloads.NewGenerator(3)
	r := stats.NewRNG(5)
	var buf bytes.Buffer
	id := int64(0)
	for _, qi := range []int{2, 7} {
		q := gen.Query(workloads.TPCDS, qi)
		for i := 0; i < 3; i++ {
			cfg := space.Random(r)
			o := e.Run(q, cfg, 1, r, noise.Low)
			o.Iteration = i
			stages, _ := e.Explain(q, cfg, 1)
			if err := eventlog.WriteRun(&buf, id, space, q, o, stages, 4); err != nil {
				t.Fatal(err)
			}
			id++
		}
	}
	return buf.Bytes()
}

// TestEventLogPartialIngestAtomicity is the regression test for the
// partial-ingest bug: a mid-loop store failure used to leave the first
// signature batch persisted+indexed+enqueued while returning a 5xx, so a
// retry double-ingested it. Now no index entry and no model update may be
// committed unless every batch write succeeded.
func TestEventLogPartialIngestAtomicity(t *testing.T) {
	st := store.New([]byte("key"))
	srv := New(sparksim.QuerySpace(), st, secret, 1)
	t.Cleanup(srv.Close)
	// First store.Put fails, everything after succeeds: with two signature
	// batches this is exactly the mid-loop fault (one would have survived
	// under the old code — here the first, since batches commit in sorted
	// signature order).
	srv.Store = &faultinject.Store{
		Inner: st,
		Plan:  &faultinject.ForOps{Plan: &faultinject.FailN{N: 1}, Ops: []string{"store.Put"}},
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)

	tok := st.Sign("events/", store.PermWrite, srv.TokenTTL)
	req, _ := http.NewRequest("POST", hs.URL+"/api/eventlog?user=u&job_id=j", bytes.NewReader(rawTwoSigLog(t)))
	req.Header.Set(SASTokenHeader, tok)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 on injected store fault", resp.StatusCode)
	}
	srv.Flush()
	if idx := st.List("index/"); len(idx) != 0 {
		t.Fatalf("partial ingest committed %d index entries: %v", len(idx), idx)
	}
	if models := st.List("models/"); len(models) != 0 {
		t.Fatalf("partial ingest trained models: %v", models)
	}

	// The client retries the whole log; the store has healed. Exactly two
	// batches must now be indexed — no duplicates from the failed attempt.
	req, _ = http.NewRequest("POST", hs.URL+"/api/eventlog?user=u&job_id=j", bytes.NewReader(rawTwoSigLog(t)))
	req.Header.Set(SASTokenHeader, tok)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("retry status = %d", resp.StatusCode)
	}
	srv.Flush()
	if idx := st.List("index/"); len(idx) != 2 {
		t.Fatalf("retry committed %d index entries, want 2: %v", len(idx), idx)
	}
}

func TestHealthEndpointAccounting(t *testing.T) {
	srv, hs := newServer(t)
	// One good token request, one unauthorized.
	doJSON(t, "POST", hs.URL+"/api/token", auth(), TokenRequest{Prefix: "x/", Perm: store.PermRead})
	doJSON(t, "POST", hs.URL+"/api/token", nil, TokenRequest{Prefix: "x/", Perm: store.PermRead})
	// One store failure surfaced as 5xx.
	st := srv.Store
	srv.Store = &faultinject.Store{
		Inner: st,
		Plan:  &faultinject.ForOps{Plan: &faultinject.FailN{N: 1}, Ops: []string{"store.Get"}},
	}
	tok := st.Sign("models/", store.PermRead, srv.TokenTTL)
	resp := doJSON(t, "GET", hs.URL+"/api/object?path=models/u/m.model",
		map[string]string{SASTokenHeader: tok}, nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("injected store fault: status = %d", resp.StatusCode)
	}

	resp = doJSON(t, "GET", hs.URL+"/api/health", nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("health status = %d", resp.StatusCode)
	}
	var h HealthReport
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" {
		t.Fatalf("status = %q, want degraded after a fresh 5xx", h.Status)
	}
	tk := h.Endpoints["token"]
	if tk.Requests != 2 || tk.ClientErrors != 1 {
		t.Fatalf("token accounting = %+v", tk)
	}
	ob := h.Endpoints["get_object"]
	if ob.Requests != 1 || ob.ServerErrors != 1 || ob.LastError == "" {
		t.Fatalf("get_object accounting = %+v", ob)
	}
	if h.UptimeSeconds < 0 || h.PendingUpdates != 0 {
		t.Fatalf("health report malformed: %+v", h)
	}
}

func TestRequestDeadlineHonored(t *testing.T) {
	srv, hs := newServer(t)
	srv.RequestTimeout = time.Nanosecond // every request arrives expired
	space := sparksim.QuerySpace()
	var obs []sparksim.Observation
	for i := 0; i < 8; i++ {
		cfg := space.With(space.Default(), sparksim.ShufflePartitions, float64(100+10*i))
		obs = append(obs, sparksim.Observation{Config: cfg, DataSize: 1e9, Time: float64(1000 + i)})
	}
	resp := doJSON(t, "POST", hs.URL+"/api/appcache", auth(), AppCacheRequest{
		ArtifactID: "a", Current: space.Default(),
		Queries: []QueryHistory{{ID: "q", Centroid: space.Default(), Observations: obs}},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline: status = %d, want 503", resp.StatusCode)
	}
	// The timeout shows up in the endpoint accounting.
	resp = doJSON(t, "GET", hs.URL+"/api/health", nil, nil)
	var h HealthReport
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Endpoints["compute_appcache"].Timeouts == 0 {
		t.Fatalf("timeout not accounted: %+v", h.Endpoints["compute_appcache"])
	}
}
