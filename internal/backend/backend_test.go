package backend

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/store"
)

const secret = "s3cret"

func newServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(sparksim.QuerySpace(), store.New([]byte("key")), secret, 1)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { hs.Close(); srv.Close() })
	return srv, hs
}

func doJSON(t *testing.T, method, url string, headers map[string]string, body any) *http.Response {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(blob)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func auth() map[string]string { return map[string]string{ClusterTokenHeader: secret} }

func TestTokenRequiresAuth(t *testing.T) {
	_, hs := newServer(t)
	resp := doJSON(t, "POST", hs.URL+"/api/token", nil, TokenRequest{Prefix: "x/", Perm: store.PermRead})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestTokenValidation(t *testing.T) {
	_, hs := newServer(t)
	resp := doJSON(t, "POST", hs.URL+"/api/token", auth(), TokenRequest{Prefix: "", Perm: store.PermRead})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty prefix: status = %d", resp.StatusCode)
	}
	resp = doJSON(t, "POST", hs.URL+"/api/token", auth(), TokenRequest{Prefix: "x/", Perm: "rw"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad perm: status = %d", resp.StatusCode)
	}
	resp = doJSON(t, "POST", hs.URL+"/api/token", auth(), TokenRequest{Prefix: "x/", Perm: store.PermWrite})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("good request: status = %d", resp.StatusCode)
	}
	var tr TokenResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil || tr.Token == "" || tr.TTLSeconds <= 0 {
		t.Fatalf("token response malformed: %+v err=%v", tr, err)
	}
}

func TestObjectAccessNeedsValidToken(t *testing.T) {
	srv, hs := newServer(t)
	srv.Store.PutInternal("models/u/sig.model", []byte("blob"))
	// No token.
	resp := doJSON(t, "GET", hs.URL+"/api/object?path=models/u/sig.model", nil, nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("tokenless read: status = %d", resp.StatusCode)
	}
	// Wrong-scope token.
	tok := srv.Store.Sign("events/", store.PermRead, srv.TokenTTL)
	resp = doJSON(t, "GET", hs.URL+"/api/object?path=models/u/sig.model",
		map[string]string{SASTokenHeader: tok}, nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("scoped-out read: status = %d", resp.StatusCode)
	}
	// Missing object with a valid token is 404.
	tok = srv.Store.Sign("models/", store.PermRead, srv.TokenTTL)
	resp = doJSON(t, "GET", hs.URL+"/api/object?path=models/u/other.model",
		map[string]string{SASTokenHeader: tok}, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing object: status = %d", resp.StatusCode)
	}
}

func TestEventsValidation(t *testing.T) {
	srv, hs := newServer(t)
	tok := srv.Store.Sign("events/", store.PermWrite, srv.TokenTTL)
	hdr := map[string]string{SASTokenHeader: tok}

	// Missing identifiers.
	req, _ := http.NewRequest("POST", hs.URL+"/api/events?user=u", strings.NewReader(""))
	req.Header.Set(SASTokenHeader, tok)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing params: status = %d", resp.StatusCode)
	}

	// Corrupt payload must be rejected before persisting.
	req, _ = http.NewRequest("POST", hs.URL+"/api/events?user=u&signature=s&job_id=j",
		strings.NewReader("{not json lines"))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt payload: status = %d", resp.StatusCode)
	}
	if n := len(srv.Store.List("events/")); n != 0 {
		t.Fatalf("corrupt payload persisted %d files", n)
	}
}

func TestRetrainSkipsTinyHistories(t *testing.T) {
	srv, hs := newServer(t)
	tok := srv.Store.Sign("events/j/", store.PermWrite, srv.TokenTTL)
	space := sparksim.QuerySpace()
	var buf bytes.Buffer
	if err := flighting.WriteTraces(&buf, []flighting.Trace{{
		QueryID: "s", Config: space.Default(), DataSize: 1, TimeMs: 1,
	}}); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("POST", hs.URL+"/api/events?user=u&signature=s&job_id=j", &buf)
	req.Header.Set(SASTokenHeader, tok)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	srv.Flush()
	if _, err := srv.Store.GetInternal(store.ModelPath("u", "s")); err == nil {
		t.Fatal("one trace must not be enough to train a model")
	}
}

func TestAppCacheValidation(t *testing.T) {
	_, hs := newServer(t)
	// Unauthenticated.
	resp := doJSON(t, "POST", hs.URL+"/api/appcache", nil, AppCacheRequest{})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated: status = %d", resp.StatusCode)
	}
	// No queries.
	resp = doJSON(t, "POST", hs.URL+"/api/appcache", auth(), AppCacheRequest{
		ArtifactID: "a", Current: sparksim.QuerySpace().Default(),
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty queries: status = %d", resp.StatusCode)
	}
	// Query space has no app params → unprocessable once states fit.
	space := sparksim.QuerySpace()
	var obs []sparksim.Observation
	for i := 0; i < 8; i++ {
		cfg := space.With(space.Default(), sparksim.ShufflePartitions, float64(100+10*i))
		obs = append(obs, sparksim.Observation{Config: cfg, DataSize: 1e9, Time: float64(1000 + i)})
	}
	resp = doJSON(t, "POST", hs.URL+"/api/appcache", auth(), AppCacheRequest{
		ArtifactID: "a", Current: space.Default(),
		Queries: []QueryHistory{{ID: "q", Centroid: space.Default(), Observations: obs}},
	})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("no app params: status = %d", resp.StatusCode)
	}
	// Missing artifact on GET.
	resp = doJSON(t, "GET", hs.URL+"/api/appcache?artifact_id=nope", auth(), nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing artifact: status = %d", resp.StatusCode)
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	srv := New(sparksim.QuerySpace(), store.New([]byte("k")), secret, 1)
	srv.Close()
	srv.Close() // must not panic or deadlock
}
