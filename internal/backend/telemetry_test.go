package backend

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"strings"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// postTracedEvents ships one trace batch through POST /api/events with
// optional extra headers, returning the response status.
func postTracedEvents(t *testing.T, srv *Server, hs string, headers map[string]string, n int) int {
	t.Helper()
	tok := srv.Store.Sign("events/", store.PermWrite, srv.TokenTTL)
	var buf bytes.Buffer
	if err := flighting.WriteTraces(&buf, traceBatch(n, 3)); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", hs+"/api/events?user=u&signature=s&job_id=j", &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(SASTokenHeader, tok)
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func scrape(t *testing.T, url string) []telemetry.Family {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ContentType {
		t.Errorf("content type = %q, want %q", ct, telemetry.ContentType)
	}
	fams, err := telemetry.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("scrape did not parse: %v", err)
	}
	return fams
}

// TestMetricsEndpoint drives one ingest + retrain and asserts the /metrics
// scrape parses and carries the request, updater, queue, and model series.
func TestMetricsEndpoint(t *testing.T) {
	srv, hs := newServer(t)
	if code := postTracedEvents(t, srv, hs.URL, nil, 8); code != http.StatusAccepted {
		t.Fatalf("ingest status = %d", code)
	}
	srv.Flush()

	fams := scrape(t, hs.URL)
	req, ok := telemetry.Find(fams, "rockhopper_http_requests_total")
	if !ok {
		t.Fatal("rockhopper_http_requests_total missing")
	}
	var events2xx float64
	for _, s := range req.Series {
		if s.Labels["endpoint"] == "events" && s.Labels["code"] == "2xx" {
			events2xx = s.Value
		}
	}
	if events2xx != 1 {
		t.Errorf("events 2xx count = %v, want 1", events2xx)
	}

	lat, ok := telemetry.Find(fams, "rockhopper_http_request_duration_seconds")
	if !ok || lat.Type != telemetry.KindHistogram {
		t.Fatalf("latency histogram missing or mistyped: %+v", lat)
	}

	retrains, ok := telemetry.Find(fams, "rockhopper_updater_retrains_total")
	if !ok || len(retrains.Series) != 1 || retrains.Series[0].Value != 1 {
		t.Fatalf("retrains = %+v, want single series at 1", retrains)
	}

	best, ok := telemetry.Find(fams, "rockhopper_model_best_cost_ms")
	if !ok || len(best.Series) != 1 {
		t.Fatalf("best-cost gauge missing: %+v", best)
	}
	bs := best.Series[0]
	if bs.Labels["user"] != "u" || bs.Labels["signature"] != "s" || bs.Value <= 0 {
		t.Errorf("best-cost series = %+v, want u/s with positive ms", bs)
	}

	if depth, ok := telemetry.Find(fams, "rockhopper_updater_queue_depth"); !ok {
		t.Error("queue depth gauge missing")
	} else if depth.Series[0].Value != 0 {
		t.Errorf("drained queue depth = %v, want 0", depth.Series[0].Value)
	}

	if objs, ok := telemetry.Find(fams, "rockhopper_store_objects"); !ok {
		t.Error("store size gauge missing")
	} else if objs.Series[0].Value < 2 {
		t.Errorf("store objects = %v, want >= 2 (event file + model)", objs.Series[0].Value)
	}
}

// TestTracePropagation sends a traced ingest and expects the identity in the
// span ring (via /api/trace) and in the retrain log line.
func TestTracePropagation(t *testing.T) {
	srv, hs := newServer(t)
	var logs bytes.Buffer
	srv.Logger = log.New(&logs, "", 0)

	const header = "00000000000000ab-00000000000000cd"
	code := postTracedEvents(t, srv, hs.URL, map[string]string{telemetry.TraceHeader: header}, 8)
	if code != http.StatusAccepted {
		t.Fatalf("ingest status = %d", code)
	}
	srv.Flush()

	resp, err := http.Get(hs.URL + "/api/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var spans []telemetry.Span
	if err := json.NewDecoder(resp.Body).Decode(&spans); err != nil {
		t.Fatalf("span ring payload: %v", err)
	}
	found := false
	for _, sp := range spans {
		if sp.TraceID == "00000000000000ab" && sp.Name == "events" && sp.Status == "202" {
			found = true
		}
	}
	if !found {
		t.Errorf("traced request missing from span ring: %+v", spans)
	}

	// The retrain logs under the request's trace with the server's own child
	// span (same trace half, freshly minted span half).
	if !strings.Contains(logs.String(), "[trace 00000000000000ab-") ||
		!strings.Contains(logs.String(), "backend: retrained u/s") {
		t.Errorf("retrain log line lost the trace identity:\n%s", logs.String())
	}
}

// TestUntracedRequestsStayOutOfRing: requests without the header must not
// fabricate identities.
func TestUntracedRequestsStayOutOfRing(t *testing.T) {
	srv, hs := newServer(t)
	if code := postTracedEvents(t, srv, hs.URL, nil, 4); code != http.StatusAccepted {
		t.Fatalf("ingest status = %d", code)
	}
	srv.Flush()
	if spans := srv.tele.spans.Snapshot(); len(spans) != 0 {
		t.Errorf("untraced request recorded spans: %+v", spans)
	}
}

// TestLoadShedding pins the saturation contract: a full updater backlog
// turns ingest into 429 + Retry-After and counts a shed, and the path
// reopens as soon as the backlog drains.
func TestLoadShedding(t *testing.T) {
	srv, hs := newServer(t)

	// Saturate the backlog without racing the real updater.
	srv.mu.Lock()
	srv.pending = DefaultMaxPendingUpdates
	srv.mu.Unlock()

	tok := srv.Store.Sign("events/", store.PermWrite, srv.TokenTTL)
	var buf bytes.Buffer
	if err := flighting.WriteTraces(&buf, traceBatch(4, 3)); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("POST", hs.URL+"/api/events?user=u&signature=s&job_id=j", &buf)
	req.Header.Set(SASTokenHeader, tok)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated ingest status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
	if got := srv.tele.shed.With("events").Value(); got != 1 {
		t.Errorf("shed counter = %v, want 1", got)
	}

	// Queue drains -> ingest reopens.
	srv.mu.Lock()
	srv.pending = 0
	srv.mu.Unlock()
	if code := postTracedEvents(t, srv, hs.URL, nil, 4); code != http.StatusAccepted {
		t.Fatalf("post-drain ingest status = %d, want 202", code)
	}
	srv.Flush()

	// MaxPendingUpdates lowers the threshold.
	srv.MaxPendingUpdates = 1
	srv.mu.Lock()
	srv.pending = 1
	srv.mu.Unlock()
	if code := postTracedEvents(t, srv, hs.URL, nil, 4); code != http.StatusTooManyRequests {
		t.Fatalf("custom threshold ingest status = %d, want 429", code)
	}
	srv.mu.Lock()
	srv.pending = 0
	srv.mu.Unlock()
}

// TestHealthMatchesRegistry: the health report is now derived from the same
// registry series the scrape exposes, so the two must agree.
func TestHealthMatchesRegistry(t *testing.T) {
	_, hs := newServer(t)
	// One client error: object fetch with a bogus token.
	resp, err := http.Get(hs.URL + "/api/object?path=models/u/x.model")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var h HealthReport
	hr := doJSON(t, "GET", hs.URL+"/api/health", nil, nil)
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	e := h.Endpoints["get_object"]
	if e.Requests != 1 || e.ClientErrors != 1 {
		t.Fatalf("health accounting = %+v, want 1 request / 1 client error", e)
	}
	if e.LastError == "" {
		t.Error("health report lost the last error body")
	}

	fams := scrape(t, hs.URL)
	req, _ := telemetry.Find(fams, "rockhopper_http_requests_total")
	var reg float64
	for _, s := range req.Series {
		if s.Labels["endpoint"] == "get_object" && s.Labels["code"] == "4xx" {
			reg = s.Value
		}
	}
	if int64(reg) != e.ClientErrors {
		t.Errorf("registry 4xx = %v, health ClientErrors = %d — must agree", reg, e.ClientErrors)
	}
}

// TestLatencyExemplarLinksTraceToBucket proves the full wiring: a traced
// request's span identity must surface as an OpenMetrics exemplar on the
// endpoint's latency histogram when /metrics is scraped.
func TestLatencyExemplarLinksTraceToBucket(t *testing.T) {
	srv, hs := newServer(t)
	sc := telemetry.SpanContext{TraceID: 0x1111222233334444, SpanID: 0x5555666677778888}
	status := postTracedEvents(t, srv, hs.URL, map[string]string{telemetry.TraceHeader: sc.String()}, 2)
	if status != http.StatusAccepted {
		t.Fatalf("traced ingest status = %d", status)
	}

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fams, err := telemetry.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("scrape parse: %v", err)
	}
	fam, ok := telemetry.Find(fams, "rockhopper_http_request_duration_seconds")
	if !ok {
		t.Fatal("latency family missing from scrape")
	}
	for _, s := range fam.Series {
		if !strings.HasSuffix(s.Name, "_bucket") || s.Labels["endpoint"] != "events" {
			continue
		}
		if s.Exemplar != nil {
			// The exemplar carries the server's own child span: same trace
			// as the inbound header, but a freshly minted span ID parented
			// under it (the propagation contract).
			if s.Exemplar.TraceID != sc.TraceHex() {
				t.Fatalf("exemplar trace = %+v, want trace %s", s.Exemplar, sc.TraceHex())
			}
			if s.Exemplar.SpanID == sc.SpanHex() || s.Exemplar.SpanID == "" {
				t.Fatalf("exemplar span = %q, want a fresh server child span, not the inbound %s", s.Exemplar.SpanID, sc.SpanHex())
			}
			return
		}
	}
	t.Fatal("no latency bucket carries the traced request's exemplar")
}
