package backend

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"github.com/rockhopper-db/rockhopper/internal/resilience"
	"github.com/rockhopper-db/rockhopper/internal/telemetry"
)

// TestHealthReportFakeClock pins the health endpoint's time semantics to
// an injected clock: uptime follows the fake clock exactly, and the
// ok → degraded → ok transition around the one-minute error window is
// driven by Advance, not by sleeping through real wall time.
func TestHealthReportFakeClock(t *testing.T) {
	srv, hs := newServer(t)
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clk := resilience.NewFakeClock(base)
	srv.SetClock(clk)

	getHealth := func() HealthReport {
		t.Helper()
		resp := doJSON(t, "GET", hs.URL+"/api/health", nil, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("health status = %d", resp.StatusCode)
		}
		var h HealthReport
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}

	h := getHealth()
	if h.Status != "ok" || h.UptimeSeconds != 0 {
		t.Fatalf("fresh server: status=%q uptime=%v, want ok/0", h.Status, h.UptimeSeconds)
	}

	clk.Advance(90 * time.Second)
	if h = getHealth(); h.UptimeSeconds != 90 {
		t.Fatalf("uptime = %v, want exactly 90 (fake clock)", h.UptimeSeconds)
	}

	// A server error at t=90s opens the one-minute degraded window.
	srv.observe("events", http.StatusInternalServerError, "boom", false, 0, clk.Now(), telemetry.SpanContext{})
	if h = getHealth(); h.Status != "degraded" {
		t.Fatalf("status after 5xx = %q, want degraded", h.Status)
	}

	// 59s later the window is still open; 61s later it has closed.
	clk.Advance(59 * time.Second)
	if h = getHealth(); h.Status != "degraded" {
		t.Fatalf("status 59s after 5xx = %q, want degraded", h.Status)
	}
	clk.Advance(2 * time.Second)
	h = getHealth()
	if h.Status != "ok" {
		t.Fatalf("status 61s after 5xx = %q, want ok", h.Status)
	}
	if h.UptimeSeconds != 151 {
		t.Fatalf("uptime = %v, want exactly 151", h.UptimeSeconds)
	}
	if e := h.Endpoints["events"]; e.ServerErrors != 1 || e.LastErrorUnixMs != base.Add(90*time.Second).UnixMilli() {
		t.Fatalf("endpoint accounting lost the fake-clock timestamp: %+v", e)
	}
}
