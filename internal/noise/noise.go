// Package noise implements the observational-noise model of Rockhopper's
// synthetic evaluation (Section 6.1, Equation 8). Production Spark telemetry
// exhibits two distinct noise modes the paper identifies in the Microsoft
// Fabric environment:
//
//   - fluctuation noise — frequent, small, Gaussian-distributed slowdowns
//     parameterised by a fluctuation level FL, and
//   - performance spikes — rare severe slowdowns that double the execution
//     time, occurring with probability SL/10.
//
// Given a noiseless baseline time g₀, a draw p ~ U[0,1), and ε ~ N(0, FL):
//
//	g = g₀·(1+|ε|)      if p > SL/10
//	g = g₀·(1+|ε|)·2    otherwise
//
// Noise is always a slowdown (|ε| ≥ 0), matching the paper's framing that
// interference only ever makes queries slower.
package noise

import (
	"fmt"
	"math"

	"github.com/rockhopper-db/rockhopper/internal/stats"
)

// Injector perturbs a noiseless execution time. Implementations must be safe
// to call repeatedly with the same RNG; every call consumes randomness.
type Injector interface {
	// Inject returns the observed time for noiseless baseline g0.
	Inject(r *stats.RNG, g0 float64) float64
}

// Model is the paper's Equation (8) noise model.
type Model struct {
	// FL is the fluctuation level: the standard deviation of the Gaussian
	// slowdown term ε. FL = 1 is the paper's "high noise"; 0.1 is "low".
	FL float64
	// SL is the spike level: spikes occur with probability SL/10, doubling
	// execution time. SL = 1 is high (10% spike rate); 0.1 is low (1%).
	SL float64
}

// High is the paper's high-noise setting (Figure 8a): FL = 1, SL = 1.
var High = Model{FL: 1, SL: 1}

// Low is the paper's low-noise setting (Figure 8b): FL = 0.1, SL = 0.1.
var Low = Model{FL: 0.1, SL: 0.1}

// None performs no perturbation; it is used when evaluating "true"
// performance during convergence measurement.
var None = Model{}

// Inject applies Equation (8) to g0.
func (m Model) Inject(r *stats.RNG, g0 float64) float64 {
	if m.FL == 0 && m.SL == 0 {
		return g0
	}
	eps := math.Abs(r.Normal(0, m.FL))
	g := g0 * (1 + eps)
	if r.Float64() <= m.SL/10 {
		g *= 2
	}
	return g
}

// SpikeProb returns the per-observation spike probability SL/10.
func (m Model) SpikeProb() float64 { return m.SL / 10 }

// String renders the model for experiment logs.
func (m Model) String() string { return fmt.Sprintf("noise(FL=%g, SL=%g)", m.FL, m.SL) }

// Scaled is an Injector wrapper that additionally multiplies the observed
// time by a per-signature heterogeneity factor, used by the fleet simulation
// where some customer workloads are inherently noisier than others.
type Scaled struct {
	Base   Model
	Factor float64 // multiplies FL and SL; 1 means Base unchanged
}

// Inject applies the scaled model.
func (s Scaled) Inject(r *stats.RNG, g0 float64) float64 {
	m := Model{FL: s.Base.FL * s.Factor, SL: stats.Clamp(s.Base.SL*s.Factor, 0, 10)}
	return m.Inject(r, g0)
}

var (
	_ Injector = Model{}
	_ Injector = Scaled{}
)
