package noise

import (
	"testing"
	"testing/quick"

	"github.com/rockhopper-db/rockhopper/internal/stats"
)

func TestNoneIsIdentity(t *testing.T) {
	t.Parallel()
	r := stats.NewRNG(1)
	for i := 0; i < 100; i++ {
		if g := None.Inject(r, 42); g != 42 {
			t.Fatalf("None injected noise: %g", g)
		}
	}
}

func TestNoiseOnlySlowsDown(t *testing.T) {
	t.Parallel()
	r := stats.NewRNG(2)
	for i := 0; i < 10000; i++ {
		if g := High.Inject(r, 100); g < 100 {
			t.Fatalf("noise sped query up: %g", g)
		}
	}
}

func TestSpikeFrequency(t *testing.T) {
	t.Parallel()
	// With FL = 0 every non-spike observation equals g0 exactly, so spikes
	// are identifiable as g = 2·g0.
	m := Model{FL: 0, SL: 1}
	r := stats.NewRNG(3)
	n := 50000
	spikes := 0
	for i := 0; i < n; i++ {
		g := m.Inject(r, 10)
		switch g {
		case 10:
		case 20:
			spikes++
		default:
			t.Fatalf("unexpected observation %g", g)
		}
	}
	p := float64(spikes) / float64(n)
	if p < 0.08 || p > 0.12 {
		t.Fatalf("spike rate = %g; want ≈ 0.10", p)
	}
}

func TestFluctuationMagnitude(t *testing.T) {
	t.Parallel()
	// E[|ε|] for ε~N(0,σ) is σ·√(2/π) ≈ 0.7979σ. With SL = 0, the mean
	// slowdown factor is 1 + 0.798·FL.
	m := Model{FL: 0.5, SL: 0}
	r := stats.NewRNG(4)
	n := 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += m.Inject(r, 1)
	}
	mean := sum / float64(n)
	want := 1 + 0.7979*0.5
	if mean < want-0.02 || mean > want+0.02 {
		t.Fatalf("mean slowdown = %g; want ≈ %g", mean, want)
	}
}

func TestHighLowPresets(t *testing.T) {
	t.Parallel()
	if High.FL != 1 || High.SL != 1 || Low.FL != 0.1 || Low.SL != 0.1 {
		t.Fatal("preset constants drifted from the paper")
	}
	if High.SpikeProb() != 0.1 || Low.SpikeProb() != 0.01 {
		t.Fatal("SpikeProb wrong")
	}
}

func TestScaled(t *testing.T) {
	t.Parallel()
	r := stats.NewRNG(5)
	s := Scaled{Base: Model{FL: 0.2, SL: 0.5}, Factor: 0}
	// Zero factor disables all noise.
	if g := s.Inject(r, 7); g != 7 {
		t.Fatalf("zero-factor Scaled should be identity, got %g", g)
	}
	s2 := Scaled{Base: High, Factor: 2}
	var sum1, sum2 float64
	r1, r2 := stats.NewRNG(6), stats.NewRNG(6)
	for i := 0; i < 20000; i++ {
		sum1 += High.Inject(r1, 1)
		sum2 += s2.Inject(r2, 1)
	}
	if sum2 <= sum1 {
		t.Fatalf("doubled factor should add more noise: %g vs %g", sum1, sum2)
	}
}

// Property: injected time scales linearly with g0 in distribution; check the
// trivially true pointwise property g(k·g0) uses the same multiplier family,
// i.e. output is ≥ input and finite for any positive baseline.
func TestPropInjectBounds(t *testing.T) {
	t.Parallel()
	f := func(seed uint64, flTenths, slTenths uint8) bool {
		m := Model{FL: float64(flTenths%20) / 10, SL: float64(slTenths % 10)}
		r := stats.NewRNG(seed)
		for i := 0; i < 50; i++ {
			g0 := 1 + r.Float64()*1000
			g := m.Inject(r, g0)
			if g < g0 || g != g || g > g0*(1+10*m.FL+1)*2 {
				// |ε| beyond 10σ is effectively impossible; treat as failure.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
