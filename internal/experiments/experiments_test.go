package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/tuners"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

func TestSyntheticObjective(t *testing.T) {
	obj := NewSyntheticObjective()
	opt := obj.OptimalConfig()
	if v := obj.TrueTime(opt, 1); v > obj.OptimalTime(1)*1.01 {
		t.Fatalf("objective at optimum = %g; want ≈ %g", v, obj.OptimalTime(1))
	}
	def := obj.Space.Default()
	if obj.TrueTime(def, 1) <= obj.OptimalTime(1) {
		t.Fatal("default should be suboptimal")
	}
	if obj.TrueTime(def, 2) <= obj.TrueTime(def, 1) {
		t.Fatal("objective must scale with data size")
	}
}

func TestFig01OptimaDiffer(t *testing.T) {
	rows, parts := Fig01PartitionSweep(Fig01Params{})
	if len(rows) != 4 || len(rows[0].Times) != len(parts) {
		t.Fatalf("unexpected shape: %d rows", len(rows))
	}
	bests := map[float64]bool{}
	for _, r := range rows {
		bests[r.BestP] = true
		// Interior optimum: neither extreme should be best.
		if r.BestP == parts[0] || r.BestP == parts[len(parts)-1] {
			t.Fatalf("%s best at boundary P=%g", r.QueryID, r.BestP)
		}
	}
	if len(bests) < 2 {
		t.Fatal("per-query optima should differ")
	}
	var buf bytes.Buffer
	PrintFig01(&buf, rows, parts)
	if !strings.Contains(buf.String(), "tpcds-q1") {
		t.Fatal("print output missing query rows")
	}
}

func TestFig02BaselinesStruggle(t *testing.T) {
	r := Fig02NoisyBaselines(Fig02Params{Runs: 8, Iters: 50})
	for _, alg := range []string{"bo", "flow2"} {
		b, ok := r.Bands[alg]
		if !ok || len(b.Median) != 50 {
			t.Fatalf("band missing for %s", alg)
		}
		// The Figure 2 phenomenon: under high noise the median trajectory
		// stays well above the optimum at the end of the horizon.
		final := stats.Mean(b.Median[40:])
		if final < r.Optimal*1.05 {
			t.Fatalf("%s converged suspiciously well under high noise: %g vs optimal %g", alg, final, r.Optimal)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "flow2") {
		t.Fatal("print output incomplete")
	}
}

func TestFig03ManualImproves(t *testing.T) {
	r := Fig03ManualVsBO(Fig03Params{Queries: []int{2}, Users: 15, Iters: 25})
	if len(r.Manual) != 1 || len(r.BO) != 1 {
		t.Fatalf("unexpected result shape")
	}
	m := r.Manual[0]
	if stats.Mean(m[20:]) >= m[0] {
		t.Fatalf("experts should improve on average: start=%g end=%g", m[0], stats.Mean(m[20:]))
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "manual") {
		t.Fatal("print output incomplete")
	}
}

func TestFig08NoiseOnlySlowsDown(t *testing.T) {
	rows := Fig08SyntheticFunction(Fig08Params{Points: 21})
	if len(rows) != 21 {
		t.Fatalf("points = %d", len(rows))
	}
	minIdx := 0
	for i, r := range rows {
		if r.NoisyHigh < r.True || r.NoisyLow < r.True {
			t.Fatal("noise must only slow down")
		}
		if r.True < rows[minIdx].True {
			minIdx = i
		}
	}
	// The true curve is convex with an interior minimum near Opt[0]=0.35.
	if minIdx == 0 || minIdx == len(rows)-1 {
		t.Fatal("true curve should have an interior minimum")
	}
	var buf bytes.Buffer
	PrintFig08(&buf, rows)
	if !strings.Contains(buf.String(), "high-noise") {
		t.Fatal("print output incomplete")
	}
}

func TestFig09LevelOrdering(t *testing.T) {
	r := Fig09SurrogateLevels(Fig09Params{Levels: []int{9, 5, 1}, Runs: 8, Iters: 60})
	tail := func(level int) float64 {
		b := r.Bands[level]
		return stats.Mean(b.Median[50:])
	}
	l1, l5, l9 := tail(1), tail(5), tail(9)
	if !(l1 < l5 && l5 < l9) {
		t.Fatalf("level ordering violated: L1=%g L5=%g L9=%g", l1, l5, l9)
	}
	// Level 1 should approach the optimum.
	if l1 > r.Optimal*1.15 {
		t.Fatalf("Level 1 should nearly converge: %g vs optimal %g", l1, r.Optimal)
	}
}

func TestFig10CLConverges(t *testing.T) {
	r := Fig10CLSVR(Fig10Params{Runs: 6, Iters: 80})
	start := r.Band.Median[0]
	final := stats.Mean(r.Band.Median[65:])
	if final >= start {
		t.Fatalf("CL+SVR should improve: start=%g final=%g", start, final)
	}
	gFinal := stats.Mean(r.GapBand.Median[65:])
	if gFinal >= r.GapBand.Median[0] {
		t.Fatalf("optimality gap should shrink: %g vs %g", gFinal, r.GapBand.Median[0])
	}
}

func TestFig11DynamicConverges(t *testing.T) {
	r := Fig11DynamicWorkloads(Fig11Params{Runs: 5, Iters: 80})
	for _, shape := range []string{"linear", "periodic"} {
		b := r.Normed[shape]
		if len(b.Median) != 80 {
			t.Fatalf("%s band missing", shape)
		}
		final := stats.Mean(b.Median[65:])
		if final >= b.Median[0] {
			t.Fatalf("%s: normed performance should improve: start=%g final=%g", shape, b.Median[0], final)
		}
	}
}

func TestFig12SpeedupsMonotone(t *testing.T) {
	r := Fig12TransferLearning(Fig12Params{
		TargetQueries: []int{1, 2, 3}, Iters: 15, FlightRuns: 30, SampleSizes: []int{50, 150},
	})
	for n, sp := range r.Speedup {
		if len(sp) != 15 {
			t.Fatalf("n=%d: %d iters", n, len(sp))
		}
		prev := 0.0
		for i, v := range sp {
			if v < prev-1e-12 {
				t.Fatalf("n=%d: best-so-far speedup decreased at %d", n, i)
			}
			if v < 1-1e-12 {
				t.Fatalf("n=%d: speedup below 1 at %d (%g)", n, i, v)
			}
			prev = v
		}
		if sp[len(sp)-1] > r.BestSpeedup+1e-9 {
			t.Fatalf("n=%d: speedup exceeds oracle", n)
		}
	}
}

func TestFig13CLBeatsBOFromPoorStart(t *testing.T) {
	r := Fig13CLvsBO(Fig13Params{Queries: []int{1, 2, 3}, Iters: 40})
	tail := func(xs []float64) float64 { return stats.Mean(xs[32:]) }
	if tail(r.CL) >= r.StartotalMs {
		t.Fatalf("CL should improve from poor start: %g vs %g", tail(r.CL), r.StartotalMs)
	}
	if tail(r.CL) >= tail(r.CBO) {
		t.Fatalf("CL should out-converge BO here: CL=%g BO=%g", tail(r.CL), tail(r.CBO))
	}
}

func TestEmbeddingAblationRuns(t *testing.T) {
	r := EmbeddingAblation(EmbeddingAblationParams{
		TargetQueries: []int{1, 2, 3, 5}, Iters: 12, FlightRuns: 20,
	})
	if len(r.Plain) != 12 || len(r.Virtual) != 12 {
		t.Fatal("trajectory lengths wrong")
	}
	for i := range r.Plain {
		if r.Plain[i] <= 0 || r.Virtual[i] <= 0 {
			t.Fatal("non-positive totals")
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "virtual") {
		t.Fatal("print output incomplete")
	}
}

func TestFig14CountersConsistent(t *testing.T) {
	r := Fig14TPCH(Fig14Params{Iters: 20, FlightRuns: 10, DSQueries: []int{1, 2}})
	if len(r.Rows) != workloads.TPCH.QueryCount() {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	g10, g15, reg := 0, 0, 0
	for _, row := range r.Rows {
		if row.ImprovementPct > 15 {
			g15++
			g10++
		} else if row.ImprovementPct > 10 {
			g10++
		} else if row.ImprovementPct < 0 {
			reg++
		}
	}
	if g10 != r.GainsOver10 || g15 != r.GainsOver15 || reg != r.Regressions {
		t.Fatalf("counters inconsistent: %d/%d/%d vs %d/%d/%d",
			g10, g15, reg, r.GainsOver10, r.GainsOver15, r.Regressions)
	}
	for _, v := range r.TotalPerIter {
		if v <= 0 {
			t.Fatal("non-positive total")
		}
	}
}

func TestFleetStudyAccounting(t *testing.T) {
	r := FleetStudy(FleetParams{Signatures: 12, Iters: 40, Guardrail: true})
	if len(r.ImprovementsPct) != 12 {
		t.Fatalf("improvements = %d", len(r.ImprovementsPct))
	}
	if r.Maintained+r.Disabled != 12 {
		t.Fatalf("guardrail accounting: %d + %d != 12", r.Maintained, r.Disabled)
	}
	if r.MaxImprovementPct < r.MinImprovementPct {
		t.Fatal("bounds inverted")
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "guardrail") {
		t.Fatal("print output incomplete")
	}
}

func TestFleetImprovesOnAverage(t *testing.T) {
	r := FleetStudy(FleetParams{Signatures: 15, Iters: 80, BaseNoise: noise.Model{FL: 0.2, SL: 0.2}})
	if r.TotalImprovementPct <= 0 {
		t.Fatalf("fleet should improve in aggregate: %g%%", r.TotalImprovementPct)
	}
}

func TestArchRoundTrip(t *testing.T) {
	r := ArchRoundTrip(ArchParams{Iters: 20})
	if !r.ModelTrained {
		t.Fatal("backend model should have trained")
	}
	if r.EventFiles != 20 {
		t.Fatalf("event files = %d; want 20", r.EventFiles)
	}
	if r.AppCacheRuns != 1 {
		t.Fatalf("app cache runs = %d", r.AppCacheRuns)
	}
	if r.FinalMs <= 0 || r.DefaultMs <= 0 {
		t.Fatal("degenerate times")
	}
}

func TestAppLevelJointImproves(t *testing.T) {
	r := AppLevelJoint(AppLevelParams{})
	if r.JointMs > r.StartMs {
		t.Fatalf("joint optimization regressed: %g vs %g", r.JointMs, r.StartMs)
	}
}

func TestAblationsWindowClaim(t *testing.T) {
	r := Ablations(AblationParams{Runs: 5, Iters: 70, Ns: []int{2, 10}, Alphas: []float64{0.08}})
	var n2, n10 float64
	for _, row := range r.WindowN {
		switch row.Label {
		case "N=2":
			n2 = row.FinalMs
		case "N=10":
			n10 = row.FinalMs
		}
	}
	// The paper's de-noising claim: tiny windows (hill-climbing style)
	// cannot cope with heavy noise.
	if n10 >= n2 {
		t.Fatalf("N=10 should beat N=2 under high noise: %g vs %g", n10, n2)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "FIND_BEST") {
		t.Fatal("print output incomplete")
	}
}

func TestRunLoopRecords(t *testing.T) {
	obj := NewSyntheticObjective()
	r := stats.NewRNG(1)
	tn := &dummyTuner{cfg: obj.Space.Default()}
	recs := RunLoop(obj.Space, obj, tn, 10, noise.Low, workloads.Linear{Base: 1, Slope: 0.1}, r)
	if len(recs) != 10 {
		t.Fatalf("records = %d", len(recs))
	}
	for i, rec := range recs {
		if rec.Iteration != i || rec.Observed < rec.TrueTime {
			t.Fatalf("record %d malformed: %+v", i, rec)
		}
	}
	if recs[9].Scale <= recs[0].Scale {
		t.Fatal("size process ignored")
	}
}

type dummyTuner struct {
	cfg sparksim.Config
}

func (d *dummyTuner) Name() string                         { return "dummy" }
func (d *dummyTuner) Propose(int, float64) sparksim.Config { return d.cfg.Clone() }
func (d *dummyTuner) Observe(sparksim.Observation)         {}

var _ tuners.Tuner = (*dummyTuner)(nil)

func TestGuardrailAblationTruncatesTail(t *testing.T) {
	r := GuardrailAblation(GuardrailAblationParams{Signatures: 12, Iters: 50, Thresholds: []float64{-1, 0.01}})
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	off, on := r.Rows[0], r.Rows[1]
	if off.Disabled != 0 {
		t.Fatal("guardrail-off run cannot disable anything")
	}
	// The guarded policy's worst case must not be (meaningfully) worse than
	// the unguarded one's.
	if on.WorstPct < off.WorstPct-1 {
		t.Fatalf("guardrail should truncate the regression tail: off=%g on=%g", off.WorstPct, on.WorstPct)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "Guardrail ablation") {
		t.Fatal("print output incomplete")
	}
}

func TestBaselinesTable(t *testing.T) {
	r := Baselines(BaselinesParams{Runs: 4, Iters: 60, Noises: []noise.Model{noise.None, noise.High}})
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	byAlg := map[string][]float64{}
	for _, row := range r.Rows {
		if len(row.ImprovementPct) != 2 {
			t.Fatalf("%s has %d noise columns", row.Algorithm, len(row.ImprovementPct))
		}
		byAlg[row.Algorithm] = row.ImprovementPct
	}
	// Centroid Learning must remain within a safe band under high noise
	// (no catastrophic regression) — the robustness headline.
	if byAlg["centroid"][1] < -10 {
		t.Fatalf("centroid regressed badly under noise: %g%%", byAlg["centroid"][1])
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "centroid") {
		t.Fatal("print output incomplete")
	}
}

func TestCatalogStudy(t *testing.T) {
	r := CatalogStudy(CatalogParams{Queries: 4, Iters: 30})
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.DefaultMs <= 0 || row.FinalMs <= 0 {
			t.Fatalf("degenerate row %+v", row)
		}
		if row.FactTable == "" || row.FactTable == row.QueryID {
			t.Fatalf("fact table not extracted: %+v", row)
		}
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "lineitem") {
		t.Fatal("catalog output should name real tables")
	}
}

func TestAQEStudy(t *testing.T) {
	r := AQEStudy(AQEParams{Queries: []int{1, 2}, Iters: 30})
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var offSum, onSum float64
	for _, row := range r.Rows {
		offSum += row.HeadroomOffPct
		onSum += row.HeadroomOnPct
	}
	// AQE absorbs part of the static tuning value in aggregate.
	if onSum >= offSum {
		t.Fatalf("AQE should reduce aggregate headroom: off=%g on=%g", offSum, onSum)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "AQE interaction") {
		t.Fatal("print output incomplete")
	}
}
