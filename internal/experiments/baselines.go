package experiments

import (
	"fmt"
	"io"

	"github.com/rockhopper-db/rockhopper/internal/core"
	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/tuners"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

// BaselinesParams configures the cross-algorithm summary: every tuner in
// the repository on the same benchmark query under increasing noise. This
// condenses the paper's thesis into one table — model-guided and
// single-observation methods all work noiselessly; only Centroid Learning
// degrades gracefully as production noise grows.
type BaselinesParams struct {
	QueryIdx int
	Runs     int
	Iters    int
	Seed     uint64
	Noises   []noise.Model
	// Workers bounds the per-run worker pool (0 = NumCPU).
	Workers int
}

func (p *BaselinesParams) defaults() {
	if p.QueryIdx == 0 {
		p.QueryIdx = 2
	}
	if p.Runs == 0 {
		p.Runs = 10
	}
	if p.Iters == 0 {
		p.Iters = 100
	}
	if p.Seed == 0 {
		p.Seed = 9191
	}
	if len(p.Noises) == 0 {
		p.Noises = []noise.Model{noise.None, {FL: 0.3, SL: 0.3}, noise.High}
	}
}

// BaselinesRow is one algorithm's median final improvement per noise level.
type BaselinesRow struct {
	Algorithm string
	// ImprovementPct[i] corresponds to Params.Noises[i]; measured as the
	// median (across runs) of the final-fifth median true time vs default.
	ImprovementPct []float64
}

// BaselinesResult is the summary table.
type BaselinesResult struct {
	Params BaselinesParams
	// HeadroomPct is the oracle improvement available on this query.
	HeadroomPct float64
	Rows        []BaselinesRow
}

// Baselines runs the comparison.
func Baselines(p BaselinesParams) *BaselinesResult {
	p.defaults()
	space := sparksim.QuerySpace()
	e := sparksim.NewEngine(space)
	q := workloads.NewGenerator(99).Query(workloads.TPCDS, p.QueryIdx)
	def := e.TrueTime(q, space.Default(), 1)
	_, opt := e.OptimalConfig(q, 1, 14)
	res := &BaselinesResult{Params: p, HeadroomPct: PercentImprovement(def, opt)}

	algs := []string{"centroid", "bo", "flow2", "hillclimb", "oppertune", "random"}
	root := stats.NewRNG(p.Seed)
	for _, alg := range algs {
		alg := alg
		row := BaselinesRow{Algorithm: alg}
		for _, nm := range p.Noises {
			nm := nm
			algRNG := root.SplitNamed(fmt.Sprintf("%s-%v", alg, nm))
			// Per-run streams are drawn sequentially (identical for any
			// worker count); the tuning loops execute across the pool.
			rngs := make([]*stats.RNG, p.Runs)
			for run := range rngs {
				rngs[run] = algRNG.Split()
			}
			finals := mapRuns(p.Runs, p.Workers, func(run int) float64 {
				seedRNG := rngs[run]
				var tn tuners.Tuner
				switch alg {
				case "centroid":
					sel := core.NewSurrogateSelector(space, nil, nil, seedRNG.Split())
					cl := core.New(space, sel, seedRNG.Split())
					cl.Guardrail = nil
					tn = cl
				case "bo":
					tn = tuners.NewBO(space, seedRNG.Split())
				case "flow2":
					tn = tuners.NewFLOW2(space, seedRNG.Split())
				case "hillclimb":
					tn = tuners.NewHillClimb(space, seedRNG.Split())
				case "oppertune":
					tn = tuners.NewOPPerTune(space, seedRNG.Split())
				default:
					tn = tuners.NewRandomSearch(space, seedRNG.Split())
				}
				recs := RunLoop(space, QueryEvaluator{E: e, Q: q}, tn, p.Iters, nm, workloads.Constant{}, seedRNG.Split())
				return tailMedian(recs, p.Iters/5)
			})
			row.ImprovementPct = append(row.ImprovementPct, PercentImprovement(def, stats.Median(finals)))
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Print renders the table.
func (r *BaselinesResult) Print(w io.Writer) {
	fmt.Fprintf(w, "=== All tuners on tpcds-q%d (oracle headroom %.1f%%), median final improvement %% ===\n",
		r.Params.QueryIdx, r.HeadroomPct)
	fmt.Fprintf(w, "%-12s", "algorithm")
	for _, nm := range r.Params.Noises {
		fmt.Fprintf(w, " %18v", nm)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s", row.Algorithm)
		for _, v := range row.ImprovementPct {
			fmt.Fprintf(w, " %18.1f", v)
		}
		fmt.Fprintln(w)
	}
}
