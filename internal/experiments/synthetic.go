package experiments

import (
	"fmt"
	"io"

	"github.com/rockhopper-db/rockhopper/internal/core"
	"github.com/rockhopper-db/rockhopper/internal/ml"
	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/tuners"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

// Fig02Params configures the noisy-baselines study (Figure 2): vanilla BO
// and FLOW2 on the synthetic convex function under high noise.
type Fig02Params struct {
	Runs  int // paper: 200
	Iters int // paper: 500
	Noise noise.Model
	Seed  uint64
	// Workers bounds the experiment worker pool (0 = NumCPU). Results are
	// identical for any value; see BandStudy.
	Workers int
	// Algorithms selects the baselines; default {"bo", "flow2"} (the
	// figure's pair). "hillclimb", "oppertune", and "random" extend the
	// comparison to every single-observation method in the repository.
	Algorithms []string
}

func (p *Fig02Params) defaults() {
	if p.Runs == 0 {
		p.Runs = 200
	}
	if p.Iters == 0 {
		p.Iters = 500
	}
	if p.Noise == (noise.Model{}) {
		p.Noise = noise.High
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	if len(p.Algorithms) == 0 {
		p.Algorithms = []string{"bo", "flow2"}
	}
}

// Fig02Result holds one convergence band per baseline algorithm.
type Fig02Result struct {
	Params  Fig02Params
	Optimal float64
	Bands   map[string]stats.Band
}

// Fig02NoisyBaselines runs Figure 2.
func Fig02NoisyBaselines(p Fig02Params) *Fig02Result {
	p.defaults()
	obj := NewSyntheticObjective()
	res := &Fig02Result{Params: p, Optimal: obj.OptimalTime(1), Bands: map[string]stats.Band{}}
	root := stats.NewRNG(p.Seed)
	for _, alg := range p.Algorithms {
		alg := alg
		algRNG := root.SplitNamed(alg)
		res.Bands[alg] = BandStudy(p.Runs, p.Workers, func(run int) (tuners.Tuner, func() []Record) {
			seedRNG := algRNG.Split()
			var tn tuners.Tuner
			switch alg {
			case "bo":
				tn = tuners.NewBO(obj.Space, seedRNG.Split())
			case "hillclimb":
				tn = tuners.NewHillClimb(obj.Space, seedRNG.Split())
			case "oppertune":
				tn = tuners.NewOPPerTune(obj.Space, seedRNG.Split())
			case "random":
				tn = tuners.NewRandomSearch(obj.Space, seedRNG.Split())
			default:
				tn = tuners.NewFLOW2(obj.Space, seedRNG.Split())
			}
			noiseRNG := seedRNG.Split()
			return tn, func() []Record {
				return RunLoop(obj.Space, obj, tn, p.Iters, p.Noise, workloads.Constant{}, noiseRNG)
			}
		})
	}
	return res
}

// Print renders the result.
func (r *Fig02Result) Print(w io.Writer) {
	fmt.Fprintf(w, "=== Figure 2: baseline convergence under %v (optimal=%.0f ms) ===\n", r.Params.Noise, r.Optimal)
	every := r.Params.Iters / 10
	for _, alg := range r.Params.Algorithms {
		PrintBand(w, "algorithm: "+alg, r.Bands[alg], every)
	}
}

// Fig08Params configures the synthetic-function illustration (Figure 8).
type Fig08Params struct {
	Points int
	Seed   uint64
}

// Fig08Row is one sampled x-position of the Figure 8 slice.
type Fig08Row struct {
	X         float64 // normalized position along dimension 0
	True      float64
	NoisyHigh float64
	NoisyLow  float64
}

// Fig08SyntheticFunction samples the objective along dimension 0 with the
// other dimensions held at the optimum, before and after noise injection at
// the high and low settings.
func Fig08SyntheticFunction(p Fig08Params) []Fig08Row {
	if p.Points == 0 {
		p.Points = 41
	}
	if p.Seed == 0 {
		p.Seed = 7
	}
	obj := NewSyntheticObjective()
	rHigh := stats.NewRNG(p.Seed)
	rLow := stats.NewRNG(p.Seed + 1)
	rows := make([]Fig08Row, p.Points)
	for i := range rows {
		x := float64(i) / float64(p.Points-1)
		u := append([]float64(nil), obj.Opt...)
		u[0] = x
		cfg := obj.Space.Denormalize(u)
		truth := obj.TrueTime(cfg, 1)
		rows[i] = Fig08Row{
			X:         x,
			True:      truth,
			NoisyHigh: noise.High.Inject(rHigh, truth),
			NoisyLow:  noise.Low.Inject(rLow, truth),
		}
	}
	return rows
}

// PrintFig08 renders the Figure 8 table.
func PrintFig08(w io.Writer, rows []Fig08Row) {
	fmt.Fprintf(w, "=== Figure 8: synthetic objective before/after noise ===\n")
	fmt.Fprintf(w, "%8s %12s %12s %12s\n", "x", "true", "high-noise", "low-noise")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.3f %12.1f %12.1f %12.1f\n", r.X, r.True, r.NoisyHigh, r.NoisyLow)
	}
}

// Fig09Params configures the pseudo-surrogate accuracy study (Figure 9).
type Fig09Params struct {
	Levels []int // paper: 9, 7, 5, 3, 1
	Runs   int   // paper: 100
	Iters  int   // paper: 500
	Noise  noise.Model
	Seed   uint64
	// Workers bounds the experiment worker pool (0 = NumCPU).
	Workers int
}

func (p *Fig09Params) defaults() {
	if len(p.Levels) == 0 {
		p.Levels = []int{9, 7, 5, 3, 1}
	}
	if p.Runs == 0 {
		p.Runs = 100
	}
	if p.Iters == 0 {
		p.Iters = 500
	}
	if p.Noise == (noise.Model{}) {
		p.Noise = noise.High
	}
	if p.Seed == 0 {
		p.Seed = 99
	}
}

// Fig09Result maps pseudo-surrogate level to its convergence band.
type Fig09Result struct {
	Params  Fig09Params
	Optimal float64
	Bands   map[int]stats.Band
}

// Fig09SurrogateLevels runs Centroid Learning with Level-X pseudo-surrogates
// that pick the candidate at the 10·X-th true-performance percentile.
func Fig09SurrogateLevels(p Fig09Params) *Fig09Result {
	p.defaults()
	obj := NewSyntheticObjective()
	res := &Fig09Result{Params: p, Optimal: obj.OptimalTime(1), Bands: map[int]stats.Band{}}
	root := stats.NewRNG(p.Seed)
	for _, level := range p.Levels {
		level := level
		lvlRNG := root.SplitNamed(fmt.Sprintf("level-%d", level))
		res.Bands[level] = BandStudy(p.Runs, p.Workers, func(run int) (tuners.Tuner, func() []Record) {
			seedRNG := lvlRNG.Split()
			sel := core.LevelSelector{
				Level: level,
				True:  func(c sparksim.Config) float64 { return obj.TrueTime(c, 1) },
			}
			cl := core.New(obj.Space, sel, seedRNG.Split())
			cl.Guardrail = nil
			noiseRNG := seedRNG.Split()
			return cl, func() []Record {
				return RunLoop(obj.Space, obj, cl, p.Iters, p.Noise, workloads.Constant{}, noiseRNG)
			}
		})
	}
	return res
}

// Print renders the result.
func (r *Fig09Result) Print(w io.Writer) {
	fmt.Fprintf(w, "=== Figure 9: CL convergence vs surrogate accuracy (optimal=%.0f ms) ===\n", r.Optimal)
	every := r.Params.Iters / 10
	for _, level := range r.Params.Levels {
		PrintBand(w, fmt.Sprintf("pseudo-surrogate level %d (picks %d0th pct)", level, level), r.Bands[level], every)
	}
}

// Fig10Params configures the real-surrogate study (Figure 10): CL with a
// kernel-ridge ("SVR") surrogate trained on noisy observations.
type Fig10Params struct {
	Runs  int
	Iters int
	Noise noise.Model
	Seed  uint64
	// Workers bounds the experiment worker pool (0 = NumCPU).
	Workers int
}

func (p *Fig10Params) defaults() {
	if p.Runs == 0 {
		p.Runs = 100
	}
	if p.Iters == 0 {
		p.Iters = 500
	}
	if p.Noise == (noise.Model{}) {
		p.Noise = noise.High
	}
	if p.Seed == 0 {
		p.Seed = 1010
	}
}

// Fig10Result carries the normed-performance band and the optimality gap of
// the most impactful configuration dimension.
type Fig10Result struct {
	Params  Fig10Params
	Optimal float64
	Band    stats.Band
	// GapBand is the per-iteration |u₀ − opt₀| band (Figure 10b analogue,
	// dimension 0 = spark.sql.files.maxPartitionBytes).
	GapBand stats.Band
}

// Fig10CLSVR runs Figure 10.
func Fig10CLSVR(p Fig10Params) *Fig10Result {
	p.defaults()
	obj := NewSyntheticObjective()
	root := stats.NewRNG(p.Seed)
	// Sequential prep (all shared-stream draws), parallel execution.
	loops := make([]func() []Record, p.Runs)
	for run := range loops {
		seedRNG := root.Split()
		sel := core.NewSurrogateSelector(obj.Space, nil, nil, seedRNG.Split())
		sel.NewModel = func() ml.Regressor { return ml.NewKernelRidge() }
		cl := core.New(obj.Space, sel, seedRNG.Split())
		cl.Guardrail = nil
		noiseRNG := seedRNG.Split()
		loops[run] = func() []Record {
			return RunLoop(obj.Space, obj, cl, p.Iters, p.Noise, workloads.Constant{}, noiseRNG)
		}
	}
	runs := mapRuns(p.Runs, p.Workers, func(i int) []Record { return loops[i]() })
	trajs := make([][]float64, 0, p.Runs)
	gaps := make([][]float64, 0, p.Runs)
	for _, recs := range runs {
		trajs = append(trajs, TrueTimes(recs))
		gaps = append(gaps, OptimalityGap(obj.Space, recs, 0, obj.Opt[0]))
	}
	return &Fig10Result{
		Params:  p,
		Optimal: obj.OptimalTime(1),
		Band:    stats.ConvergenceBand(trajs),
		GapBand: stats.ConvergenceBand(gaps),
	}
}

// Print renders the result.
func (r *Fig10Result) Print(w io.Writer) {
	fmt.Fprintf(w, "=== Figure 10: CL with SVR surrogate under %v (optimal=%.0f ms) ===\n", r.Params.Noise, r.Optimal)
	every := r.Params.Iters / 10
	PrintBand(w, "(a) true performance", r.Band, every)
	PrintBand(w, "(b) optimality gap, maxPartitionBytes (normalized)", r.GapBand, every)
}

// Fig11Params configures the dynamic-workload study (Figure 11).
type Fig11Params struct {
	Runs  int
	Iters int
	Noise noise.Model
	Seed  uint64
	// PeriodK is the periodic process's period.
	PeriodK int
	// Workers bounds the experiment worker pool (0 = NumCPU).
	Workers int
}

func (p *Fig11Params) defaults() {
	if p.Runs == 0 {
		p.Runs = 100
	}
	if p.Iters == 0 {
		p.Iters = 500
	}
	if p.Noise == (noise.Model{}) {
		p.Noise = noise.High
	}
	if p.Seed == 0 {
		p.Seed = 1111
	}
	if p.PeriodK == 0 {
		p.PeriodK = 20
	}
}

// Fig11Result holds normed-performance and optimality-gap bands per
// dynamic-workload shape.
type Fig11Result struct {
	Params Fig11Params
	Normed map[string]stats.Band
	Gaps   map[string]stats.Band
}

// Fig11DynamicWorkloads runs CL under linearly growing and periodic data
// sizes; performance is normalized by the per-iteration optimum so growth
// itself does not read as regression.
func Fig11DynamicWorkloads(p Fig11Params) *Fig11Result {
	p.defaults()
	obj := NewSyntheticObjective()
	shapes := map[string]func() workloads.SizeProcess{
		"linear":   func() workloads.SizeProcess { return workloads.Linear{Base: 1, Slope: 0.02} },
		"periodic": func() workloads.SizeProcess { return workloads.Periodic{Base: 1, Amplitude: 1, K: p.PeriodK} },
	}
	res := &Fig11Result{Params: p, Normed: map[string]stats.Band{}, Gaps: map[string]stats.Band{}}
	root := stats.NewRNG(p.Seed)
	for name, mk := range shapes {
		shapeRNG := root.SplitNamed(name)
		loops := make([]func() []Record, p.Runs)
		for run := range loops {
			seedRNG := shapeRNG.Split()
			sel := core.NewSurrogateSelector(obj.Space, nil, nil, seedRNG.Split())
			sel.NewModel = func() ml.Regressor { return ml.NewKernelRidge() }
			cl := core.New(obj.Space, sel, seedRNG.Split())
			cl.Guardrail = nil
			sizes, noiseRNG := mk(), seedRNG.Split()
			loops[run] = func() []Record {
				return RunLoop(obj.Space, obj, cl, p.Iters, p.Noise, sizes, noiseRNG)
			}
		}
		runs := mapRuns(p.Runs, p.Workers, func(i int) []Record { return loops[i]() })
		var normed, gaps [][]float64
		for _, recs := range runs {
			normed = append(normed, NormedTimes(recs, obj.OptimalTime))
			gaps = append(gaps, OptimalityGap(obj.Space, recs, 0, obj.Opt[0]))
		}
		res.Normed[name] = stats.ConvergenceBand(normed)
		res.Gaps[name] = stats.ConvergenceBand(gaps)
	}
	return res
}

// Print renders the result.
func (r *Fig11Result) Print(w io.Writer) {
	fmt.Fprintf(w, "=== Figure 11: CL under dynamic workloads (%v) ===\n", r.Params.Noise)
	every := r.Params.Iters / 10
	for _, name := range []string{"linear", "periodic"} {
		PrintBand(w, name+": normed performance (1.0 = optimal)", r.Normed[name], every)
		PrintBand(w, name+": optimality gap, maxPartitionBytes", r.Gaps[name], every)
	}
}
