package experiments

import (
	"os"
	"testing"
)

// TestEmbeddingAblationCollisionPopulation probes the Figure-4 mechanism on
// a population where it should matter most: archetype-0 TPC-DS queries
// (idx % 10 == 0) share identical operator multisets, so the plain
// embedding separates them only through the two cardinality features while
// virtual operators expose per-operator selectivity. This test documents
// the measured effect (printed under -v) without asserting a direction —
// see EXPERIMENTS.md for why the paper's 5–10% gain reproduces only
// partially.
func TestEmbeddingAblationCollisionPopulation(t *testing.T) {
	if testing.Short() {
		t.Skip("collision-population study is slow")
	}
	r := EmbeddingAblation(EmbeddingAblationParams{
		TargetQueries: []int{10, 20, 30, 40, 50, 60, 70, 80},
		Iters:         25, FlightRuns: 40,
	})
	if testing.Verbose() {
		r.Print(os.Stdout)
	}
	if len(r.Plain) != 25 || len(r.Virtual) != 25 {
		t.Fatal("trajectories malformed")
	}
}
