package experiments

import (
	"bytes"
	"testing"
)

// TestParallelGoldenEquivalence is the determinism contract of the parallel
// experiment engine: the rendered output of a repeated-run study (Figure 2)
// and a fleet study (Figure 15) must be byte-for-byte identical at one worker
// and at eight. Seed streams are drawn sequentially at build time and results
// are collected in run order, so scheduling cannot leak into the numbers.
func TestParallelGoldenEquivalence(t *testing.T) {
	t.Parallel()
	render := func(workers int) (fig2, fig15 string) {
		var b2, b15 bytes.Buffer
		Fig02NoisyBaselines(Fig02Params{Runs: 6, Iters: 40, Workers: workers}).Print(&b2)
		FleetStudy(FleetParams{Signatures: 8, Iters: 30, Workers: workers}).Print(&b15)
		return b2.String(), b15.String()
	}
	f2seq, f15seq := render(1)
	f2par, f15par := render(8)
	if f2seq != f2par {
		t.Errorf("Fig 2 output differs between Workers=1 and Workers=8:\n--- sequential ---\n%s\n--- parallel ---\n%s", f2seq, f2par)
	}
	if f15seq != f15par {
		t.Errorf("Fig 15 output differs between Workers=1 and Workers=8:\n--- sequential ---\n%s\n--- parallel ---\n%s", f15seq, f15par)
	}
	if f2seq == "" || f15seq == "" {
		t.Fatal("experiments rendered no output")
	}
}

// TestWorkerSweepEquivalence sweeps additional pool sizes over the cheaper
// studies that use distinct parallelization shapes: the per-query TPC-H digest
// (Fig 14), the guardrail ablation, and the baselines table.
func TestWorkerSweepEquivalence(t *testing.T) {
	t.Parallel()
	type render func(workers int) string
	cases := []struct {
		name string
		fn   render
	}{
		{"fig14", func(w int) string {
			var b bytes.Buffer
			Fig14TPCH(Fig14Params{Iters: 10, FlightRuns: 6, DSQueries: []int{1, 2}, Workers: w}).Print(&b)
			return b.String()
		}},
		{"guardrail", func(w int) string {
			var b bytes.Buffer
			GuardrailAblation(GuardrailAblationParams{Signatures: 6, Iters: 20, Thresholds: []float64{-1, 0}, Workers: w}).Print(&b)
			return b.String()
		}},
		{"baselines", func(w int) string {
			var b bytes.Buffer
			Baselines(BaselinesParams{Runs: 3, Iters: 24, Workers: w}).Print(&b)
			return b.String()
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			want := tc.fn(1)
			if want == "" {
				t.Fatal("no output")
			}
			for _, w := range []int{2, 5, 16} {
				if got := tc.fn(w); got != want {
					t.Errorf("Workers=%d output differs from Workers=1:\n--- want ---\n%s\n--- got ---\n%s", w, want, got)
				}
			}
		})
	}
}
