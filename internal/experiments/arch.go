package experiments

import (
	"context"
	"fmt"
	"io"
	"net/http/httptest"

	"github.com/rockhopper-db/rockhopper/internal/applevel"
	"github.com/rockhopper-db/rockhopper/internal/backend"
	"github.com/rockhopper-db/rockhopper/internal/client"
	"github.com/rockhopper-db/rockhopper/internal/core"
	"github.com/rockhopper-db/rockhopper/internal/embedding"
	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/store"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

// ArchParams configures the end-to-end architecture round trip: the full
// Figure 5/7 loop over a real HTTP boundary — client inference, event
// upload, backend model retraining, app-cache computation.
type ArchParams struct {
	Iters int
	Noise noise.Model
	Seed  uint64
}

func (p *ArchParams) defaults() {
	if p.Iters == 0 {
		p.Iters = 40
	}
	if p.Noise == (noise.Model{}) {
		p.Noise = noise.Model{FL: 0.2, SL: 0.2}
	}
	if p.Seed == 0 {
		p.Seed = 777
	}
}

// ArchResult summarizes the round trip.
type ArchResult struct {
	Params ArchParams
	// DefaultMs and FinalMs are the query's true time before and after.
	DefaultMs, FinalMs float64
	ImprovementPct     float64
	// ModelTrained reports whether the backend produced a per-signature model.
	ModelTrained bool
	// AppCacheRuns is the app_cache entry's run counter after the study.
	AppCacheRuns int
	// EventFiles is the number of event files persisted.
	EventFiles int
}

// ArchRoundTrip exercises the full deployment loop on one recurrent query:
// every iteration the client infers a configuration (remote model if
// trained, local GP selector otherwise), executes on the simulated cluster,
// and ships the event file; the backend's streaming jobs retrain the model
// and refresh the app cache.
func ArchRoundTrip(p ArchParams) *ArchResult {
	p.defaults()
	space := sparksim.FullSpace()
	e := sparksim.NewEngine(space)
	q := workloads.NewGenerator(p.Seed).Query(workloads.TPCDS, 2)
	emb := embedding.NewVirtual()

	st := store.New([]byte("rockhopper-signing-key"))
	srv := backend.New(space, st, "cluster-secret", p.Seed)
	hs := httptest.NewServer(srv.Handler())
	defer func() { hs.Close(); srv.Close() }()
	cli := client.New(hs.URL, "cluster-secret")

	r := stats.NewRNG(p.Seed)
	sel := &client.RemoteSelector{
		Client: cli, Space: space, User: "customer-1", Signature: q.ID,
		Fallback: core.NewSurrogateSelector(space, nil, nil, r.Split()),
	}
	cl := core.New(space, sel, r.Split())
	cl.Guardrail = nil

	artifact := applevel.ArtifactID([]byte("notebook: " + q.ID))
	var obs []sparksim.Observation
	res := &ArchResult{Params: p, DefaultMs: e.TrueTime(q, space.Default(), 1)}
	noiseRNG := r.Split()
	embVec := emb.Embed(q.Plan)
	var finals []float64
	for i := 0; i < p.Iters; i++ {
		cfg := cl.Propose(i, q.Plan.LeafInputBytes())
		o := e.Run(q, cfg, 1, noiseRNG, p.Noise)
		o.Iteration = i
		cl.Observe(o)
		obs = append(obs, o)
		// Step 6: ship the event file; the backend retrains asynchronously.
		err := cli.PostEvents(context.Background(), "customer-1", q.ID, "job-arch", []flighting.Trace{{
			QueryID: q.ID, Embedding: embVec, Config: o.Config,
			DataSize: o.DataSize, TimeMs: o.Time,
		}})
		if err != nil {
			panic(fmt.Sprintf("experiments: post events: %v", err))
		}
		if i >= p.Iters-p.Iters/5 {
			finals = append(finals, o.TrueTime)
		}
	}
	srv.Flush()
	res.FinalMs = stats.Mean(finals)
	res.ImprovementPct = PercentImprovement(res.DefaultMs, res.FinalMs)
	if m, err := cli.FetchModel(context.Background(), "customer-1", q.ID); err == nil && m != nil {
		res.ModelTrained = true
	}
	// App completion: compute the app cache entry via the backend.
	if _, err := cli.ComputeAppCache(context.Background(), backend.AppCacheRequest{
		ArtifactID: artifact,
		Current:    space.Default(),
		Queries:    []backend.QueryHistory{{ID: q.ID, Centroid: cl.Centroid(), Observations: obs}},
	}); err != nil {
		panic(fmt.Sprintf("experiments: app cache: %v", err))
	}
	if entry, ok, _ := cli.FetchAppCache(context.Background(), artifact); ok {
		res.AppCacheRuns = entry.Runs
	}
	res.EventFiles = len(st.List("events/job-arch/"))
	return res
}

// Print renders the round-trip summary.
func (r *ArchResult) Print(w io.Writer) {
	fmt.Fprintf(w, "=== Architecture round trip (Figures 5 & 7) ===\n")
	fmt.Fprintf(w, "iterations: %d | event files: %d | model trained: %v | app-cache runs: %d\n",
		r.Params.Iters, r.EventFiles, r.ModelTrained, r.AppCacheRuns)
	fmt.Fprintf(w, "default %.0f ms → final %.0f ms (%.1f%% improvement)\n",
		r.DefaultMs, r.FinalMs, r.ImprovementPct)
}

// AppLevelParams configures the Algorithm 2 evaluation.
type AppLevelParams struct {
	QueriesPerApp int
	ExploreRuns   int
	Seed          uint64
}

func (p *AppLevelParams) defaults() {
	if p.QueriesPerApp == 0 {
		p.QueriesPerApp = 3
	}
	if p.ExploreRuns == 0 {
		p.ExploreRuns = 40
	}
	if p.Seed == 0 {
		p.Seed = 888
	}
}

// AppLevelResult compares application wall time before and after joint
// optimization.
type AppLevelResult struct {
	Params AppLevelParams
	// StartMs is the app wall time (startup + queries) at the starting
	// configuration; JointMs after Algorithm 2.
	StartMs, JointMs float64
	ImprovementPct   float64
}

// AppLevelJoint evaluates Algorithm 2: per-query surrogates are fitted from
// exploration history, the joint optimizer picks app-level settings, and the
// app is re-executed noiselessly to measure the true improvement.
func AppLevelJoint(p AppLevelParams) *AppLevelResult {
	p.defaults()
	space := sparksim.FullSpace()
	e := sparksim.NewEngine(space)
	app := workloads.NewGenerator(p.Seed).Notebook(1, p.QueriesPerApp)
	r := stats.NewRNG(p.Seed)

	start := space.With(space.Default(), sparksim.ExecutorInstances, 3)
	_, startTotal := e.RunApp(app, start, 1, r.Split(), nil)

	states := make([]applevel.QueryState, 0, len(app.Queries))
	for _, q := range app.Queries {
		var obs []sparksim.Observation
		rr := r.SplitNamed(q.ID)
		for i := 0; i < p.ExploreRuns; i++ {
			cand := space.Neighborhood(start, 0.3, 1, rr)[0]
			obs = append(obs, e.Run(q, cand, 1, rr, noise.Low))
		}
		qs, err := applevel.FitQueryState(space, q.ID, start, obs)
		if err != nil {
			panic(fmt.Sprintf("experiments: fit query state: %v", err))
		}
		states = append(states, qs)
	}
	jo := applevel.NewJointOptimizer(space, r.Split())
	jo.Beta = 0.25
	best, err := jo.Optimize(start, states)
	if err != nil {
		panic(fmt.Sprintf("experiments: joint optimize: %v", err))
	}
	_, jointTotal := e.RunApp(app, best, 1, r.Split(), nil)
	return &AppLevelResult{
		Params:         p,
		StartMs:        startTotal,
		JointMs:        jointTotal,
		ImprovementPct: PercentImprovement(startTotal, jointTotal),
	}
}

// Print renders the app-level summary.
func (r *AppLevelResult) Print(w io.Writer) {
	fmt.Fprintf(w, "=== Algorithm 2: app-level joint optimization ===\n")
	fmt.Fprintf(w, "app wall time: start %.0f ms → joint %.0f ms (%.1f%% improvement)\n",
		r.StartMs, r.JointMs, r.ImprovementPct)
}
