package experiments

import (
	"fmt"
	"io"
	"sort"

	"github.com/rockhopper-db/rockhopper/internal/core"
	"github.com/rockhopper-db/rockhopper/internal/embedding"
	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

// Fig14Params configures the TPC-H production benchmark (Figure 14): all 22
// queries tuned independently, baseline model trained on TPC-DS.
type Fig14Params struct {
	Iters      int // tuning horizon per query
	FlightRuns int // per-DS-query flighting samples for the baseline
	DSQueries  []int
	Noise      noise.Model
	Seed       uint64
	// Workers bounds the per-query worker pool (0 = NumCPU). Results are
	// identical for any value: per-query streams are keyed by query ID and
	// aggregation happens in query order.
	Workers int
}

func (p *Fig14Params) defaults() {
	if p.Iters == 0 {
		p.Iters = 40
	}
	if p.FlightRuns == 0 {
		p.FlightRuns = 30
	}
	if len(p.DSQueries) == 0 {
		p.DSQueries = []int{1, 2, 3, 5, 7, 11, 13, 17, 19, 23}
	}
	if p.Noise == (noise.Model{}) {
		p.Noise = noise.Model{FL: 0.3, SL: 0.3}
	}
	if p.Seed == 0 {
		p.Seed = 1414
	}
}

// Fig14QueryRow is one TPC-H query's outcome.
type Fig14QueryRow struct {
	QueryID string
	// DefaultMs is the true time at the default configuration.
	DefaultMs float64
	// FinalMs is the mean true time over the final fifth of iterations.
	FinalMs float64
	// ImprovementPct is the relative gain (negative = regression).
	ImprovementPct float64
}

// Fig14Result summarizes the TPC-H study.
type Fig14Result struct {
	Params Fig14Params
	// TotalPerIter is the summed true time across all queries per iteration.
	TotalPerIter []float64
	Rows         []Fig14QueryRow
	// Counters matching the paper's claims.
	GainsOver10, GainsOver15, Regressions int
	TotalImprovementPct                   float64
}

// Fig14TPCH reproduces Figure 14: per-query Centroid Learning on TPC-H with
// a TPC-DS-trained baseline model under production noise.
func Fig14TPCH(p Fig14Params) *Fig14Result {
	p.defaults()
	space := sparksim.QuerySpace()
	e := sparksim.NewEngine(space)
	emb := embedding.NewVirtual()
	pipe := flighting.NewPipeline(e)
	traces, err := pipe.Run(flighting.Config{
		Suite: workloads.TPCDS, ScaleFactor: 1, RunsPerQuery: p.FlightRuns,
		Queries: p.DSQueries, Seed: p.Seed, Noise: noise.Low,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: flighting failed: %v", err))
	}
	warm := flighting.ToBaseline(traces)

	gen := workloads.NewGenerator(p.Seed)
	root := stats.NewRNG(p.Seed)
	res := &Fig14Result{Params: p, TotalPerIter: make([]float64, p.Iters)}

	// Every query's random stream is keyed by its ID (root is only read,
	// never advanced), so the per-query tuning loops fan out across the
	// worker pool; aggregation below walks the ordered results.
	type queryRun struct {
		q    *sparksim.Query
		recs []Record
		def  float64
	}
	runs := mapRuns(workloads.TPCH.QueryCount(), p.Workers, func(i int) queryRun {
		q := gen.Query(workloads.TPCH, i+1)
		qr := root.SplitNamed(q.ID)
		sel := core.NewSurrogateSelector(space, emb.Embed(q.Plan), warm, qr.Split())
		cl := core.New(space, sel, qr.Split())
		recs := RunLoop(space, QueryEvaluator{E: e, Q: q}, cl, p.Iters, p.Noise,
			workloads.Jittered{Inner: workloads.Constant{}, Sigma: 0.1, RNG: qr.Split()}, qr.Split())
		return queryRun{q: q, recs: recs, def: e.TrueTime(q, space.Default(), 1)}
	})

	var defTotal, finalTotal float64
	for _, run := range runs {
		q, recs, def := run.q, run.recs, run.def
		final := tailMedian(recs, p.Iters/5)
		imp := PercentImprovement(def, final)
		res.Rows = append(res.Rows, Fig14QueryRow{QueryID: q.ID, DefaultMs: def, FinalMs: final, ImprovementPct: imp})
		for i, rec := range recs {
			res.TotalPerIter[i] += rec.TrueTime / rec.Scale
		}
		defTotal += def
		finalTotal += final
		switch {
		case imp > 15:
			res.GainsOver15++
			res.GainsOver10++
		case imp > 10:
			res.GainsOver10++
		case imp < 0:
			res.Regressions++
		}
	}
	res.TotalImprovementPct = PercentImprovement(defTotal, finalTotal)
	return res
}

// Print renders the Figure 14 summary.
func (r *Fig14Result) Print(w io.Writer) {
	fmt.Fprintf(w, "=== Figure 14: TPC-H total execution time per iteration (baseline trained on TPC-DS) ===\n")
	step := r.Params.Iters / 10
	if step < 1 {
		step = 1
	}
	fmt.Fprintf(w, "%6s %14s\n", "iter", "total ms")
	for i := 0; i < r.Params.Iters; i += step {
		fmt.Fprintf(w, "%6d %14.0f\n", i, r.TotalPerIter[i])
	}
	fmt.Fprintf(w, "%-10s %12s %12s %10s\n", "query", "default", "final", "gain %")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %12.0f %12.0f %10.1f\n", row.QueryID, row.DefaultMs, row.FinalMs, row.ImprovementPct)
	}
	fmt.Fprintf(w, "queries >10%% gain: %d | >15%%: %d | regressions: %d | total improvement: %.1f%%\n",
		r.GainsOver10, r.GainsOver15, r.Regressions, r.TotalImprovementPct)
}

// FleetParams configures the customer-fleet deployment simulations
// (Figures 15 and 16).
type FleetParams struct {
	// Signatures is the number of recurrent query signatures (Figure 15:
	// 60+ internal notebooks; Figure 16: 416 external signatures).
	Signatures int
	// Iters is the per-signature tuning horizon (paper: >30).
	Iters int
	// Guardrail enables the conservative production guardrail.
	Guardrail bool
	// GuardrailThreshold overrides the breach threshold when Guardrail is
	// on. The external deployment used an "extremely conservative" policy —
	// autotuning stays enabled only while performance improves — which
	// corresponds to 0: any predicted non-improving trend counts as a
	// breach. (The zero value selects exactly this production policy.)
	GuardrailThreshold float64
	// BaseNoise is the fleet's noise floor; per-signature heterogeneity
	// multiplies it by a log-normal factor.
	BaseNoise noise.Model
	Seed      uint64
	// Workers bounds the per-signature worker pool (0 = NumCPU). Results
	// are identical for any value: signature streams are keyed by query ID
	// and fleet totals accumulate in signature order.
	Workers int
}

func (p *FleetParams) defaults() {
	if p.Signatures == 0 {
		p.Signatures = 60
	}
	if p.Iters == 0 {
		p.Iters = 45
	}
	if p.BaseNoise == (noise.Model{}) {
		p.BaseNoise = noise.Model{FL: 0.35, SL: 0.35}
	}
	if p.Seed == 0 {
		p.Seed = 1616
	}
}

// FleetResult summarizes a fleet simulation.
type FleetResult struct {
	Params FleetParams
	// ImprovementsPct is the per-signature percent improvement of the final
	// fifth of iterations vs the default configuration (size-normalized).
	ImprovementsPct []float64
	// Maintained counts signatures that kept autotuning through all
	// iterations; Disabled counts guardrail reversions.
	Maintained, Disabled int
	// TotalImprovementPct is the fleet-wide execution-time improvement of
	// the final fifth of iterations vs always-default.
	TotalImprovementPct float64
	// WindowImprovementPct compares the fleet's actual execution time over
	// ALL tuned iterations against running the default throughout — the
	// measurement that corresponds to the paper's production window
	// analysis (April–June usage data).
	WindowImprovementPct float64
	// MaxImprovementPct and MinImprovementPct bound the distribution.
	MaxImprovementPct, MinImprovementPct float64
}

// FleetStudy simulates a fleet of recurrent customer workloads, each tuned
// independently by Centroid Learning with varying input sizes and
// heterogeneous noise. With Guardrail=true this is the external-fleet
// protocol of Figure 16; without it, the internal study of Figure 15.
func FleetStudy(p FleetParams) *FleetResult {
	p.defaults()
	space := sparksim.QuerySpace()
	e := sparksim.NewEngine(space)
	gen := workloads.NewGenerator(p.Seed)
	root := stats.NewRNG(p.Seed)
	res := &FleetResult{Params: p}

	// Each signature's stream is keyed by its query ID (root is only read,
	// never advanced) and the generator is stateless, so whole signatures
	// fan out across the worker pool; the ordered results are aggregated
	// below exactly as the sequential loop did.
	type sigRun struct {
		recs     []Record
		def      float64
		disabled bool
	}
	runs := mapRuns(p.Signatures, p.Workers, func(s int) sigRun {
		nb := gen.Notebook(s, 1)
		q := nb.Queries[0]
		qr := root.SplitNamed(q.ID)
		sel := core.NewSurrogateSelector(space, nil, nil, qr.Split())
		cl := core.New(space, sel, qr.Split())
		if p.Guardrail {
			cl.Guardrail.Threshold = p.GuardrailThreshold
		} else {
			cl.Guardrail = nil
		}
		inj := noise.Scaled{Base: p.BaseNoise, Factor: qr.LogNormal(0, 0.4)}
		sizes := workloads.Jittered{Inner: workloads.Constant{}, Sigma: 0.2, RNG: qr.Split()}
		recs := RunLoop(space, QueryEvaluator{E: e, Q: q}, cl, p.Iters, inj, sizes, qr.Split())
		return sigRun{recs: recs, def: e.TrueTime(q, space.Default(), 1), disabled: cl.Disabled()}
	})

	var defTotal, finalTotal float64
	var windowDef, windowActual float64
	for _, run := range runs {
		def := run.def
		final := tailMedian(run.recs, p.Iters/5)
		imp := PercentImprovement(def, final)
		res.ImprovementsPct = append(res.ImprovementsPct, imp)
		for _, rec := range run.recs {
			windowDef += def
			windowActual += rec.TrueTime / rec.Scale
		}
		defTotal += def
		finalTotal += final
		if run.disabled {
			res.Disabled++
		} else {
			res.Maintained++
		}
	}
	res.TotalImprovementPct = PercentImprovement(defTotal, finalTotal)
	res.WindowImprovementPct = PercentImprovement(windowDef, windowActual)
	res.MaxImprovementPct = stats.Max(res.ImprovementsPct)
	res.MinImprovementPct = stats.Min(res.ImprovementsPct)
	return res
}

// Print renders the fleet summary with a speed-up histogram, the Figure
// 15/16 presentation.
func (r *FleetResult) Print(w io.Writer) {
	label := "Figure 15: internal customer fleet"
	if r.Params.Guardrail {
		label = "Figure 16: external customer fleet (guardrail on)"
	}
	fmt.Fprintf(w, "=== %s (%d signatures) ===\n", label, r.Params.Signatures)
	sorted := append([]float64(nil), r.ImprovementsPct...)
	sort.Float64s(sorted)
	fmt.Fprintf(w, "improvement %%: mean=%.1f median=%.1f min=%.1f max=%.1f\n",
		stats.Mean(sorted), stats.Median(sorted), r.MinImprovementPct, r.MaxImprovementPct)
	fmt.Fprintf(w, "total execution-time improvement (final fifth): %.1f%%\n", r.TotalImprovementPct)
	fmt.Fprintf(w, "total execution-time improvement (whole window): %.1f%%\n", r.WindowImprovementPct)
	if r.Params.Guardrail {
		fmt.Fprintf(w, "signatures maintaining autotuning through all iterations: %d / %d (disabled: %d)\n",
			r.Maintained, r.Params.Signatures, r.Disabled)
	}
	fmt.Fprintln(w, "distribution (10 bins):")
	for _, b := range stats.Histogram(r.ImprovementsPct, 10) {
		fmt.Fprintf(w, "  [%7.1f, %7.1f): %s\n", b.Lo, b.Hi, bar(b.Count))
	}
}

// tailMedian is the robust end-of-run level: the median size-normalized
// true time over the final n records. The median rather than the mean keeps
// a single late exploration excursion from reading as a regression.
func tailMedian(recs []Record, n int) float64 {
	if n < 1 {
		n = 1
	}
	if n > len(recs) {
		n = len(recs)
	}
	vals := make([]float64, 0, n)
	for _, rec := range recs[len(recs)-n:] {
		vals = append(vals, rec.TrueTime/rec.Scale)
	}
	return stats.Median(vals)
}

func bar(n int) string {
	if n > 60 {
		return fmt.Sprintf("%s (%d)", repeat('#', 60), n)
	}
	return fmt.Sprintf("%s (%d)", repeat('#', n), n)
}

func repeat(c byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = c
	}
	return string(b)
}
