package experiments

import (
	"fmt"
	"io"

	"github.com/rockhopper-db/rockhopper/internal/core"
	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

// GuardrailAblationParams configures the guardrail on/off study: how the
// safety mechanism trades tail-risk for average gain, the design choice
// Section 4.3 calls "sacrificing some potential performance gains" for
// stability.
type GuardrailAblationParams struct {
	Signatures int
	Iters      int
	Noise      noise.Model
	Seed       uint64
	// Thresholds sweeps the breach threshold; −1 encodes "guardrail off".
	Thresholds []float64
	// Workers bounds the per-signature worker pool (0 = NumCPU).
	Workers int
}

func (p *GuardrailAblationParams) defaults() {
	if p.Signatures == 0 {
		p.Signatures = 30
	}
	if p.Iters == 0 {
		p.Iters = 60
	}
	if p.Noise == (noise.Model{}) {
		p.Noise = noise.Model{FL: 0.5, SL: 0.5}
	}
	if p.Seed == 0 {
		p.Seed = 7777
	}
	if len(p.Thresholds) == 0 {
		p.Thresholds = []float64{-1, 0, 0.01, 0.05}
	}
}

// GuardrailAblationRow is one policy's fleet outcome.
type GuardrailAblationRow struct {
	// Threshold is the policy (−1 = off).
	Threshold float64
	// MeanImprovementPct and WorstPct summarize the per-signature final
	// improvements.
	MeanImprovementPct float64
	WorstPct           float64
	// Disabled counts guardrail reversions.
	Disabled int
}

// GuardrailAblationResult is the sweep outcome.
type GuardrailAblationResult struct {
	Params GuardrailAblationParams
	Rows   []GuardrailAblationRow
}

// GuardrailAblation runs the same noisy fleet under each guardrail policy.
// The expected shape: tightening the guardrail (lower threshold) truncates
// the regression tail (WorstPct rises toward 0) at some cost in mean gain.
func GuardrailAblation(p GuardrailAblationParams) *GuardrailAblationResult {
	p.defaults()
	space := sparksim.QuerySpace()
	e := sparksim.NewEngine(space)
	gen := workloads.NewGenerator(p.Seed)
	res := &GuardrailAblationResult{Params: p}
	for _, thr := range p.Thresholds {
		thr := thr
		root := stats.NewRNG(p.Seed) // identical fleet per policy
		row := GuardrailAblationRow{Threshold: thr}
		// Signature streams are keyed by query ID (root is only read), so
		// the fleet fans out across the worker pool per policy.
		type sigOut struct {
			imp      float64
			disabled bool
		}
		outs := mapRuns(p.Signatures, p.Workers, func(s int) sigOut {
			q := gen.Notebook(s, 1).Queries[0]
			qr := root.SplitNamed(q.ID)
			sel := core.NewSurrogateSelector(space, nil, nil, qr.Split())
			cl := core.New(space, sel, qr.Split())
			if thr < 0 {
				cl.Guardrail = nil
			} else {
				cl.Guardrail.Threshold = thr
			}
			recs := RunLoop(space, QueryEvaluator{E: e, Q: q}, cl, p.Iters, p.Noise,
				workloads.Jittered{Inner: workloads.Constant{}, Sigma: 0.15, RNG: qr.Split()}, qr.Split())
			def := e.TrueTime(q, space.Default(), 1)
			return sigOut{imp: PercentImprovement(def, tailMedian(recs, p.Iters/5)), disabled: cl.Disabled()}
		})
		imps := make([]float64, 0, p.Signatures)
		for _, o := range outs {
			imps = append(imps, o.imp)
			if o.disabled {
				row.Disabled++
			}
		}
		row.MeanImprovementPct = stats.Mean(imps)
		row.WorstPct = stats.Min(imps)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Print renders the sweep.
func (r *GuardrailAblationResult) Print(w io.Writer) {
	fmt.Fprintf(w, "=== Guardrail ablation (%d signatures, %v) ===\n", r.Params.Signatures, r.Params.Noise)
	fmt.Fprintf(w, "%12s %10s %10s %10s\n", "policy", "mean %", "worst %", "disabled")
	for _, row := range r.Rows {
		policy := fmt.Sprintf("thr=%g", row.Threshold)
		if row.Threshold < 0 {
			policy = "off"
		}
		fmt.Fprintf(w, "%12s %10.1f %10.1f %10d\n", policy, row.MeanImprovementPct, row.WorstPct, row.Disabled)
	}
}
