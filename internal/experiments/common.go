// Package experiments reproduces every measured artifact in the paper: the
// motivating figures (1–3), the synthetic-function studies (Figures 2 and
// 8–11), the benchmark-workload ablations (Figures 12–13 and the embedding
// ablation of Section 6.2), the deployment analyses (Figures 14–16), the
// architecture round trip (Figures 5 and 7), and the Algorithm 2 joint
// optimization. Each experiment has a Params struct whose zero value runs at
// a scaled-down budget suitable for tests and benchmarks; cmd/rockbench runs
// them at paper scale. All experiments are deterministic given their seed.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"

	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/parallel"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/tuners"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

// Evaluator abstracts "something that executes a configuration": either the
// Spark simulator on a real query or the synthetic convex objective of
// Section 6.1.
type Evaluator interface {
	// TrueTime is the noiseless execution time at the given data scale.
	TrueTime(cfg sparksim.Config, scale float64) float64
	// DataBytes is the input size observed at the given scale.
	DataBytes(scale float64) float64
}

// QueryEvaluator adapts an engine/query pair to the Evaluator interface.
type QueryEvaluator struct {
	E *sparksim.Engine
	Q *sparksim.Query
}

// TrueTime implements Evaluator.
func (qe QueryEvaluator) TrueTime(cfg sparksim.Config, scale float64) float64 {
	return qe.E.TrueTime(qe.Q, cfg, scale)
}

// DataBytes implements Evaluator.
func (qe QueryEvaluator) DataBytes(scale float64) float64 {
	return qe.Q.Plan.LeafInputBytes() * scale
}

// SyntheticObjective is the convex synthetic function of Section 6.1: a
// bowl over the normalized configuration space whose height scales linearly
// with data size. Figure 8 plots one slice of it before and after noise.
type SyntheticObjective struct {
	Space *sparksim.Space
	// Opt is the optimum in normalized coordinates.
	Opt []float64
	// Curv is the per-dimension curvature (bowl steepness).
	Curv []float64
	// BaseMs is the execution time at the optimum for scale 1.
	BaseMs float64
	// BytesPerScale converts scale to input bytes.
	BytesPerScale float64
}

// NewSyntheticObjective returns the canonical 3-dimensional problem used by
// Figures 2 and 8–11: optimum off-centre so the default config is
// suboptimal, moderate curvature so the bowl spans about a 4× range.
func NewSyntheticObjective() *SyntheticObjective {
	return &SyntheticObjective{
		Space:         sparksim.QuerySpace(),
		Opt:           []float64{0.35, 0.6, 0.45},
		Curv:          []float64{3.0, 1.2, 4.0},
		BaseMs:        10000,
		BytesPerScale: 10e9,
	}
}

// TrueTime implements Evaluator.
func (s *SyntheticObjective) TrueTime(cfg sparksim.Config, scale float64) float64 {
	u := s.Space.Normalize(cfg)
	v := 1.0
	for j := range u {
		d := u[j] - s.Opt[j]
		v += s.Curv[j] * d * d
	}
	return s.BaseMs * v * scale
}

// DataBytes implements Evaluator.
func (s *SyntheticObjective) DataBytes(scale float64) float64 { return s.BytesPerScale * scale }

// OptimalTime is the noiseless minimum at the given scale.
func (s *SyntheticObjective) OptimalTime(scale float64) float64 { return s.BaseMs * scale }

// OptimalConfig returns the optimum as a configuration.
func (s *SyntheticObjective) OptimalConfig() sparksim.Config { return s.Space.Denormalize(s.Opt) }

// Record is one tuning-loop iteration as the experiment harness sees it.
type Record struct {
	Iteration int
	Config    sparksim.Config
	Scale     float64
	TrueTime  float64
	Observed  float64
}

// RunLoop drives a tuner against an evaluator for iters iterations, with
// data sizes drawn from the size process and observations perturbed by the
// injector. The tuner sees only observed values; Record keeps the truth for
// measurement.
func RunLoop(space *sparksim.Space, eval Evaluator, tn tuners.Tuner, iters int, inj noise.Injector, sizes workloads.SizeProcess, r *stats.RNG) []Record {
	if sizes == nil {
		sizes = workloads.Constant{}
	}
	out := make([]Record, iters)
	for i := 0; i < iters; i++ {
		scale := sizes.Scale(i)
		bytes := eval.DataBytes(scale)
		cfg := tn.Propose(i, bytes)
		truth := eval.TrueTime(cfg, scale)
		obs := truth
		if inj != nil {
			obs = inj.Inject(r, truth)
		}
		tn.Observe(sparksim.Observation{
			Config: cfg.Clone(), DataSize: bytes, Time: obs, TrueTime: truth, Iteration: i,
		})
		out[i] = Record{Iteration: i, Config: cfg, Scale: scale, TrueTime: truth, Observed: obs}
	}
	return out
}

// TrueTimes extracts the noiseless trajectory from records.
func TrueTimes(recs []Record) []float64 {
	out := make([]float64, len(recs))
	for i, r := range recs {
		out[i] = r.TrueTime
	}
	return out
}

// NormedTimes divides each record's true time by the per-iteration optimum,
// producing the "normed performance" series of Figure 11 (1.0 = optimal).
func NormedTimes(recs []Record, optimalAt func(scale float64) float64) []float64 {
	out := make([]float64, len(recs))
	for i, r := range recs {
		out[i] = r.TrueTime / optimalAt(r.Scale)
	}
	return out
}

// OptimalityGap extracts |config_dim − opt_dim| in normalized coordinates
// per iteration, the Figure 10b/11d metric.
func OptimalityGap(space *sparksim.Space, recs []Record, dim int, opt float64) []float64 {
	out := make([]float64, len(recs))
	for i, r := range recs {
		u := space.Normalize(r.Config)
		out[i] = math.Abs(u[dim] - opt)
	}
	return out
}

// BandStudy repeats a tuning loop `runs` times with independent seeds and
// returns the per-iteration median and P5–P95 band of the noiseless
// trajectory — the presentation used by Figures 2 and 9–11.
//
// build is invoked sequentially in run order, so every draw it makes from a
// shared random stream lands identically for any worker count; the returned
// loops then execute across `workers` goroutines (0 = NumCPU) with
// trajectories collected in run order. The band is therefore byte-identical
// to a fully sequential study.
func BandStudy(runs, workers int, build func(run int) (tuners.Tuner, func() []Record)) stats.Band {
	loops := make([]func() []Record, runs)
	for i := range loops {
		_, loops[i] = build(i)
	}
	trajs := mapRuns(runs, workers, func(i int) []float64 {
		return TrueTimes(loops[i]())
	})
	return stats.ConvergenceBand(trajs)
}

// mapRuns fans fn out across the experiment worker pool and returns results
// in index order. Experiment runs are infallible by construction, so the
// only failure mode is a panic, which the pool captures and this helper
// re-raises on the calling goroutine.
func mapRuns[T any](n, workers int, fn func(i int) T) []T {
	out, err := parallel.Map(context.Background(), n, workers, func(_ context.Context, i int) (T, error) {
		return fn(i), nil
	})
	if err != nil {
		panic(err)
	}
	return out
}

// PrintBand renders a convergence band as aligned rows, sampling every
// `every` iterations.
func PrintBand(w io.Writer, title string, b stats.Band, every int) {
	fmt.Fprintf(w, "%s\n%6s %12s %12s %12s\n", title, "iter", "p5", "median", "p95")
	if every < 1 {
		every = 1
	}
	for i := 0; i < len(b.Median); i += every {
		fmt.Fprintf(w, "%6d %12.1f %12.1f %12.1f\n", i, b.Lo[i], b.Median[i], b.Hi[i])
	}
	if n := len(b.Median); n > 0 && (n-1)%every != 0 {
		fmt.Fprintf(w, "%6d %12.1f %12.1f %12.1f\n", n-1, b.Lo[n-1], b.Median[n-1], b.Hi[n-1])
	}
}

// Speedup is the paper's improvement metric: reference time over measured
// time (1.0 = parity, 1.2 = 20% faster... expressed as time ratio).
func Speedup(reference, measured float64) float64 {
	if measured <= 0 {
		return math.NaN()
	}
	return reference / measured
}

// PercentImprovement is (ref − measured)/ref × 100.
func PercentImprovement(reference, measured float64) float64 {
	if reference <= 0 {
		return math.NaN()
	}
	return (reference - measured) / reference * 100
}
