package experiments

import (
	"fmt"
	"io"

	"github.com/rockhopper-db/rockhopper/internal/core"
	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

// AQEParams configures the adaptive-query-execution interaction study:
// how much of the tuning headroom survives when the engine itself coalesces
// oversized shuffle partitions at runtime. Fabric runs Spark 3.x with AQE
// on, which is part of why the production team tuned maxPartitionBytes and
// the broadcast threshold alongside shuffle partitions.
type AQEParams struct {
	Queries []int
	Iters   int
	Noise   noise.Model
	Seed    uint64
}

func (p *AQEParams) defaults() {
	if len(p.Queries) == 0 {
		p.Queries = []int{1, 2, 3, 5, 17}
	}
	if p.Iters == 0 {
		p.Iters = 50
	}
	if p.Noise == (noise.Model{}) {
		p.Noise = noise.Model{FL: 0.3, SL: 0.3}
	}
	if p.Seed == 0 {
		p.Seed = 3131
	}
}

// AQERow is one query's outcome under both engine modes.
type AQERow struct {
	QueryID string
	// HeadroomOffPct / HeadroomOnPct: oracle improvement available.
	HeadroomOffPct, HeadroomOnPct float64
	// GainOffPct / GainOnPct: what Centroid Learning captured.
	GainOffPct, GainOnPct float64
}

// AQEResult is the study outcome.
type AQEResult struct {
	Params AQEParams
	Rows   []AQERow
}

// AQEStudy tunes each query with AQE off and on.
func AQEStudy(p AQEParams) *AQEResult {
	p.defaults()
	space := sparksim.QuerySpace()
	gen := workloads.NewGenerator(p.Seed)
	root := stats.NewRNG(p.Seed)
	res := &AQEResult{Params: p}
	for _, qi := range p.Queries {
		q := gen.Query(workloads.TPCDS, qi)
		row := AQERow{QueryID: q.ID}
		for _, aqe := range []bool{false, true} {
			e := sparksim.NewEngine(space)
			e.AQE = aqe
			def := e.TrueTime(q, space.Default(), 1)
			_, opt := e.OptimalConfig(q, 1, 12)
			headroom := PercentImprovement(def, opt)
			qr := root.SplitNamed(fmt.Sprintf("%s-aqe-%v", q.ID, aqe))
			sel := core.NewSurrogateSelector(space, nil, nil, qr.Split())
			cl := core.New(space, sel, qr.Split())
			cl.Guardrail = nil
			recs := RunLoop(space, QueryEvaluator{E: e, Q: q}, cl, p.Iters, p.Noise, workloads.Constant{}, qr.Split())
			gain := PercentImprovement(def, tailMedian(recs, p.Iters/5))
			if aqe {
				row.HeadroomOnPct, row.GainOnPct = headroom, gain
			} else {
				row.HeadroomOffPct, row.GainOffPct = headroom, gain
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Print renders the study.
func (r *AQEResult) Print(w io.Writer) {
	fmt.Fprintf(w, "=== AQE interaction: tuning headroom and CL gain with/without runtime coalescing ===\n")
	fmt.Fprintf(w, "%-12s %14s %14s %12s %12s\n", "query", "headroom off%", "headroom on%", "gain off%", "gain on%")
	var hOff, hOn float64
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-12s %14.1f %14.1f %12.1f %12.1f\n",
			row.QueryID, row.HeadroomOffPct, row.HeadroomOnPct, row.GainOffPct, row.GainOnPct)
		hOff += row.HeadroomOffPct
		hOn += row.HeadroomOnPct
	}
	n := float64(len(r.Rows))
	fmt.Fprintf(w, "mean headroom: %.1f%% without AQE → %.1f%% with AQE (runtime adaptivity absorbs part of the tuning value)\n",
		hOff/n, hOn/n)
}
