package experiments

import (
	"fmt"
	"io"

	"github.com/rockhopper-db/rockhopper/internal/core"
	"github.com/rockhopper-db/rockhopper/internal/ml"
	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

// AblationParams configures the Centroid Learning design-choice ablations
// called out in DESIGN.md: FIND_BEST variants, gradient modes, window sizes
// N, and the momentum step α.
type AblationParams struct {
	Runs  int
	Iters int
	Noise noise.Model
	Seed  uint64
	// Ns are the window sizes to sweep (paper recommends 10–20 under noise).
	Ns []int
	// Alphas are the momentum steps to sweep.
	Alphas []float64
	// Workers bounds the per-run worker pool (0 = NumCPU).
	Workers int
}

func (p *AblationParams) defaults() {
	if p.Runs == 0 {
		p.Runs = 20
	}
	if p.Iters == 0 {
		p.Iters = 150
	}
	if p.Noise == (noise.Model{}) {
		p.Noise = noise.High
	}
	if p.Seed == 0 {
		p.Seed = 4242
	}
	if len(p.Ns) == 0 {
		p.Ns = []int{2, 5, 10, 20}
	}
	if len(p.Alphas) == 0 {
		p.Alphas = []float64{0.02, 0.05, 0.08, 0.15, 0.3}
	}
}

// AblationRow is one configuration's outcome: the median final performance
// (mean of the last fifth of iterations, medianed across runs).
type AblationRow struct {
	Label   string
	FinalMs float64
}

// AblationResult groups the sweeps.
type AblationResult struct {
	Params   AblationParams
	Optimal  float64
	FindBest []AblationRow
	Gradient []AblationRow
	WindowN  []AblationRow
	Alpha    []AblationRow
}

// Ablations sweeps the CL design choices on the synthetic objective under
// high noise with varying data sizes (so FIND_BEST's size handling matters).
func Ablations(p AblationParams) *AblationResult {
	p.defaults()
	obj := NewSyntheticObjective()
	root := stats.NewRNG(p.Seed)
	res := &AblationResult{Params: p, Optimal: obj.OptimalTime(1)}

	run := func(label string, mutate func(cl *core.CentroidLearner)) AblationRow {
		lblRNG := root.SplitNamed(label)
		// Per-run streams are drawn sequentially so the sweep is identical
		// for any worker count; the loops execute across the pool.
		rngs := make([]*stats.RNG, p.Runs)
		for i := range rngs {
			rngs[i] = lblRNG.Split()
		}
		finals := mapRuns(p.Runs, p.Workers, func(i int) float64 {
			seedRNG := rngs[i]
			sel := core.NewSurrogateSelector(obj.Space, nil, nil, seedRNG.Split())
			sel.NewModel = func() ml.Regressor { return ml.NewKernelRidge() }
			cl := core.New(obj.Space, sel, seedRNG.Split())
			cl.Guardrail = nil
			mutate(cl)
			sizes := workloads.Jittered{Inner: workloads.Constant{}, Sigma: 0.25, RNG: seedRNG.Split()}
			recs := RunLoop(obj.Space, obj, cl, p.Iters, p.Noise, sizes, seedRNG.Split())
			normed := NormedTimes(recs, obj.OptimalTime)
			tailN := p.Iters / 5
			if tailN < 1 {
				tailN = 1
			}
			return stats.Mean(normed[len(normed)-tailN:]) * obj.OptimalTime(1)
		})
		return AblationRow{Label: label, FinalMs: stats.Median(finals)}
	}

	for _, mode := range []core.FindBestMode{core.FindBestRaw, core.FindBestNormalized, core.FindBestModel} {
		mode := mode
		res.FindBest = append(res.FindBest, run("find_best="+mode.String(), func(cl *core.CentroidLearner) {
			cl.Params.FindBest = mode
		}))
	}
	for _, mode := range []core.GradientMode{core.GradientLinear, core.GradientModelProbe} {
		mode := mode
		res.Gradient = append(res.Gradient, run("gradient="+mode.String(), func(cl *core.CentroidLearner) {
			cl.Params.Gradient = mode
		}))
	}
	for _, n := range p.Ns {
		n := n
		res.WindowN = append(res.WindowN, run(fmt.Sprintf("N=%d", n), func(cl *core.CentroidLearner) {
			cl.Params.N = n
		}))
	}
	for _, a := range p.Alphas {
		a := a
		res.Alpha = append(res.Alpha, run(fmt.Sprintf("alpha=%g", a), func(cl *core.CentroidLearner) {
			cl.Params.Alpha = a
		}))
	}
	return res
}

// Print renders the ablation tables.
func (r *AblationResult) Print(w io.Writer) {
	fmt.Fprintf(w, "=== Centroid Learning ablations (median final ms; optimal=%.0f) ===\n", r.Optimal)
	section := func(title string, rows []AblationRow) {
		fmt.Fprintf(w, "%s\n", title)
		for _, row := range rows {
			fmt.Fprintf(w, "  %-24s %10.0f\n", row.Label, row.FinalMs)
		}
	}
	section("FIND_BEST variant:", r.FindBest)
	section("FIND_GRADIENT mode:", r.Gradient)
	section("window size N:", r.WindowN)
	section("momentum alpha:", r.Alpha)
}
