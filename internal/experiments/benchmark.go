package experiments

import (
	"fmt"
	"io"
	"sort"

	"github.com/rockhopper-db/rockhopper/internal/core"
	"github.com/rockhopper-db/rockhopper/internal/embedding"
	"github.com/rockhopper-db/rockhopper/internal/flighting"
	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/tuners"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

// Fig01Params configures the motivating partition sweep (Figure 1).
type Fig01Params struct {
	Queries    []int // TPC-DS query numbers; default {1, 2, 3, 5}
	Partitions []float64
	Seed       uint64
}

// Fig01Row is one query's execution times across partition settings.
type Fig01Row struct {
	QueryID string
	Times   []float64
	BestP   float64
}

// Fig01PartitionSweep reproduces Figure 1: per-query execution time as a
// function of spark.sql.shuffle.partitions, showing query-specific optima.
func Fig01PartitionSweep(p Fig01Params) ([]Fig01Row, []float64) {
	if len(p.Queries) == 0 {
		p.Queries = []int{1, 2, 3, 5}
	}
	if len(p.Partitions) == 0 {
		p.Partitions = []float64{8, 16, 32, 64, 128, 200, 400, 800, 1600, 2000}
	}
	if p.Seed == 0 {
		p.Seed = 99
	}
	e := sparksim.NewEngine(sparksim.QuerySpace())
	gen := workloads.NewGenerator(p.Seed)
	rows := make([]Fig01Row, 0, len(p.Queries))
	for _, qi := range p.Queries {
		q := gen.Query(workloads.TPCDS, qi)
		row := Fig01Row{QueryID: q.ID}
		best, bestT := 0.0, 0.0
		for _, part := range p.Partitions {
			cfg := e.Space.With(e.Space.Default(), sparksim.ShufflePartitions, part)
			t := e.TrueTime(q, cfg, 1)
			row.Times = append(row.Times, t)
			if best == 0 || t < bestT {
				best, bestT = part, t
			}
		}
		row.BestP = best
		rows = append(rows, row)
	}
	return rows, p.Partitions
}

// PrintFig01 renders the Figure 1 table.
func PrintFig01(w io.Writer, rows []Fig01Row, partitions []float64) {
	fmt.Fprintf(w, "=== Figure 1: execution time vs spark.sql.shuffle.partitions ===\n%-12s", "query")
	for _, p := range partitions {
		fmt.Fprintf(w, "%9.0f", p)
	}
	fmt.Fprintf(w, "%9s\n", "best P")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s", r.QueryID)
		for _, t := range r.Times {
			fmt.Fprintf(w, "%9.0f", t)
		}
		fmt.Fprintf(w, "%9.0f\n", r.BestP)
	}
}

// Fig03Params configures the manual-tuning study (Figure 3). The paper
// recruited 50 volunteers; here scripted "expert policies" replay human-like
// coordinate tuning against the same cached platform.
type Fig03Params struct {
	Queries  []int // TPC-DS numbers; default 5 queries
	Users    int   // paper: >50
	Iters    int   // paper: up to 40
	Platform int   // cached configs per query; paper: >275
	Seed     uint64
}

func (p *Fig03Params) defaults() {
	if len(p.Queries) == 0 {
		p.Queries = []int{1, 2, 3, 5, 17}
	}
	if p.Users == 0 {
		p.Users = 50
	}
	if p.Iters == 0 {
		p.Iters = 40
	}
	if p.Platform == 0 {
		p.Platform = 275
	}
	if p.Seed == 0 {
		p.Seed = 303
	}
}

// Fig03Result holds the average manual trajectory and the BO trajectory per
// query.
type Fig03Result struct {
	Params  Fig03Params
	Queries []string
	Manual  [][]float64 // [query][iteration] mean across users
	BO      [][]float64
}

// Fig03ManualVsBO runs scripted expert policies and vanilla BO on the V0
// cached platform.
func Fig03ManualVsBO(p Fig03Params) *Fig03Result {
	p.defaults()
	space := sparksim.QuerySpace()
	e := sparksim.NewEngine(space)
	gen := workloads.NewGenerator(p.Seed)
	res := &Fig03Result{Params: p}
	root := stats.NewRNG(p.Seed)
	for _, qi := range p.Queries {
		q := gen.Query(workloads.TPCDS, qi)
		cp := flighting.NewCachedPlatform(e, q, p.Platform, 1, p.Seed)
		res.Queries = append(res.Queries, q.ID)

		// Scripted experts: human-like coordinate descent on the platform.
		mean := make([]float64, p.Iters)
		for u := 0; u < p.Users; u++ {
			r := root.SplitNamed(fmt.Sprintf("%s-user-%d", q.ID, u))
			traj := expertPolicy(space, cp, p.Iters, r)
			for i, v := range traj {
				mean[i] += v / float64(p.Users)
			}
		}
		res.Manual = append(res.Manual, mean)

		// Vanilla BO on the same platform.
		bo := tuners.NewBO(space, root.SplitNamed(q.ID+"-bo"))
		boTraj := make([]float64, p.Iters)
		for i := 0; i < p.Iters; i++ {
			cfg := bo.Propose(i, q.Plan.LeafInputBytes())
			idx, t := cp.Lookup(space, cfg)
			bo.Observe(sparksim.Observation{
				Config: cp.Configs[idx].Clone(), DataSize: q.Plan.LeafInputBytes(),
				Time: t, TrueTime: t, Iteration: i,
			})
			boTraj[i] = t
		}
		res.BO = append(res.BO, boTraj)
	}
	return res
}

// expertPolicy is one simulated volunteer: greedy coordinate tuning with
// human-scale steps (halving/doubling log parameters), occasional random
// exploration jumps, and acceptance based on the platform's displayed time.
func expertPolicy(space *sparksim.Space, cp *flighting.CachedPlatform, iters int, r *stats.RNG) []float64 {
	incumbent := space.Default()
	_, incT := cp.Lookup(space, incumbent)
	traj := make([]float64, iters)
	traj[0] = incT
	for i := 1; i < iters; i++ {
		var probe sparksim.Config
		settle := 0.7 * float64(i) / float64(iters)
		switch {
		case r.Bernoulli(settle):
			// As the session progresses, users increasingly re-run their
			// best-known configuration rather than exploring further.
			probe = incumbent
		case r.Bernoulli(0.12):
			// Exploratory jump: "what if I try something very different?"
			probe = space.Random(r)
		default:
			d := r.Intn(space.Dim())
			u := space.Normalize(incumbent)
			// Humans tune in coarse steps: ±10–25% of the (log) range.
			u[d] = stats.Clamp(u[d]+r.Uniform(0.1, 0.25)*float64(1-2*r.Intn(2)), 0, 1)
			probe = space.Denormalize(u)
		}
		_, t := cp.Lookup(space, probe)
		traj[i] = t
		if t < incT {
			incumbent, incT = probe, t
		}
	}
	return traj
}

// Print renders the Figure 3 trajectories.
func (r *Fig03Result) Print(w io.Writer) {
	fmt.Fprintf(w, "=== Figure 3: manual tuning (avg of %d scripted experts) vs BO ===\n", r.Params.Users)
	for qi, q := range r.Queries {
		fmt.Fprintf(w, "query %s\n%6s %12s %12s\n", q, "iter", "manual(avg)", "bo")
		step := r.Params.Iters / 10
		if step < 1 {
			step = 1
		}
		for i := 0; i < r.Params.Iters; i += step {
			fmt.Fprintf(w, "%6d %12.1f %12.1f\n", i, r.Manual[qi][i], r.BO[qi][i])
		}
	}
}

// Fig12Params configures the transfer-learning study (Figure 12).
type Fig12Params struct {
	// TargetQueries are the tuned TPC-DS queries; default 6 for speed,
	// paper uses all.
	TargetQueries []int
	// SampleSizes are the baseline training sample sizes; paper {100, 500,
	// 1000}.
	SampleSizes []int
	// Iters is the tuning horizon per query.
	Iters int
	// FlightRuns is the per-query count of offline flighting samples.
	FlightRuns int
	// Platform is the V0 candidate count (paper: >275).
	Platform int
	Seed     uint64
}

func (p *Fig12Params) defaults() {
	if len(p.TargetQueries) == 0 {
		p.TargetQueries = []int{1, 2, 3, 5, 13, 17}
	}
	if len(p.SampleSizes) == 0 {
		p.SampleSizes = []int{100, 500, 1000}
	}
	if p.Iters == 0 {
		p.Iters = 30
	}
	if p.FlightRuns == 0 {
		p.FlightRuns = 60
	}
	if p.Platform == 0 {
		p.Platform = 275
	}
	if p.Seed == 0 {
		p.Seed = 1212
	}
}

// Fig12Result holds, per baseline sample size, the per-iteration speedup of
// total execution time over all target queries relative to the default
// configuration.
type Fig12Result struct {
	Params  Fig12Params
	Speedup map[int][]float64
	// BestSpeedup is the oracle speedup attainable on the cached platforms.
	BestSpeedup float64
}

// Fig12TransferLearning reproduces Figure 12: Contextual BO warm-started
// from leave-one-query-out baseline samples of different sizes, evaluated on
// the V0 cached platform.
func Fig12TransferLearning(p Fig12Params) *Fig12Result {
	p.defaults()
	space := sparksim.QuerySpace()
	e := sparksim.NewEngine(space)
	emb := embedding.NewVirtual()
	pipe := flighting.NewPipeline(e)

	traces, err := pipe.Run(flighting.Config{
		Suite: workloads.TPCDS, ScaleFactor: 1, RunsPerQuery: p.FlightRuns,
		Queries: p.TargetQueries, Seed: p.Seed, Noise: noise.Low,
	})
	if err != nil {
		panic(fmt.Sprintf("experiments: flighting failed: %v", err))
	}

	gen := workloads.NewGenerator(p.Seed)
	root := stats.NewRNG(p.Seed)
	res := &Fig12Result{Params: p, Speedup: map[int][]float64{}}

	// Per-query cached platforms and default/oracle totals.
	type target struct {
		q  *sparksim.Query
		cp *flighting.CachedPlatform
	}
	targets := make([]target, 0, len(p.TargetQueries))
	var defTotal, bestTotal float64
	for _, qi := range p.TargetQueries {
		q := gen.Query(workloads.TPCDS, qi)
		cp := flighting.NewCachedPlatform(e, q, p.Platform, 1, p.Seed)
		targets = append(targets, target{q: q, cp: cp})
		_, dt := cp.Lookup(space, space.Default())
		defTotal += dt
		bestTotal += cp.BestTime()
	}
	res.BestSpeedup = Speedup(defTotal, bestTotal)

	for _, n := range p.SampleSizes {
		n := n
		perIter := make([]float64, p.Iters)
		for _, tg := range targets {
			warm := flighting.LeaveOneOut(traces, tg.q.ID, n, root.SplitNamed(fmt.Sprintf("loo-%d-%s", n, tg.q.ID)))
			cbo := tuners.NewCBO(space, root.SplitNamed(fmt.Sprintf("cbo-%d-%s", n, tg.q.ID)), emb.Embed(tg.q.Plan), warm)
			cbo.MaxRows = 400
			size := tg.q.Plan.LeafInputBytes()
			for i := 0; i < p.Iters; i++ {
				cfg := cbo.Propose(i, size)
				idx, t := tg.cp.Lookup(space, cfg)
				cbo.Observe(sparksim.Observation{
					Config: tg.cp.Configs[idx].Clone(), DataSize: size,
					Time: t, TrueTime: t, Iteration: i,
				})
				perIter[i] += t
			}
		}
		speedups := make([]float64, p.Iters)
		// Convergence is reported on the best-so-far total, matching the
		// paper's "converges to a better configuration" framing.
		bestSoFar := perIter[0]
		for i, tot := range perIter {
			if tot < bestSoFar {
				bestSoFar = tot
			}
			speedups[i] = Speedup(defTotal, bestSoFar)
		}
		res.Speedup[n] = speedups
	}
	return res
}

// Print renders the Figure 12 table.
func (r *Fig12Result) Print(w io.Writer) {
	fmt.Fprintf(w, "=== Figure 12: CBO transfer learning, speedup vs baseline sample size (oracle=%.3f) ===\n", r.BestSpeedup)
	sizes := append([]int(nil), r.Params.SampleSizes...)
	sort.Ints(sizes)
	fmt.Fprintf(w, "%6s", "iter")
	for _, n := range sizes {
		fmt.Fprintf(w, "%12s", fmt.Sprintf("n=%d", n))
	}
	fmt.Fprintln(w)
	step := r.Params.Iters / 10
	if step < 1 {
		step = 1
	}
	for i := 0; i < r.Params.Iters; i += step {
		fmt.Fprintf(w, "%6d", i)
		for _, n := range sizes {
			fmt.Fprintf(w, "%12.3f", r.Speedup[n][i])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "final:")
	for _, n := range sizes {
		fmt.Fprintf(w, " n=%d→%.3f", n, r.Speedup[n][r.Params.Iters-1])
	}
	fmt.Fprintln(w)
}

// Fig13Params configures the CL-vs-CBO comparison from a poor start
// (Figure 13) on the live (LWP-style) noisy engine.
type Fig13Params struct {
	Queries []int
	Iters   int
	Noise   noise.Model
	Seed    uint64
}

func (p *Fig13Params) defaults() {
	if len(p.Queries) == 0 {
		p.Queries = []int{1, 2, 3, 5, 13, 17}
	}
	if p.Iters == 0 {
		p.Iters = 60
	}
	if p.Noise == (noise.Model{}) {
		p.Noise = noise.Model{FL: 0.3, SL: 0.3} // production-like, milder than synthetic-high
	}
	if p.Seed == 0 {
		p.Seed = 1313
	}
}

// Fig13Result holds per-iteration total true execution time for both
// algorithms, plus the poor-start and default totals for reference.
type Fig13Result struct {
	Params      Fig13Params
	StartotalMs float64
	DefTotalMs  float64
	CL          []float64
	CBO         []float64
}

// Fig13CLvsBO runs Centroid Learning and Contextual BO from an intentionally
// poor starting configuration on the live noisy engine.
func Fig13CLvsBO(p Fig13Params) *Fig13Result {
	p.defaults()
	space := sparksim.QuerySpace()
	e := sparksim.NewEngine(space)
	gen := workloads.NewGenerator(p.Seed)
	root := stats.NewRNG(p.Seed)

	// Intentionally poor start: tiny scan partitions, minimal broadcast,
	// too few shuffle partitions.
	poor := space.With(space.Default(), sparksim.MaxPartitionBytes, 4<<20)
	poor = space.With(poor, sparksim.AutoBroadcastJoinThr, 1<<20)
	poor = space.With(poor, sparksim.ShufflePartitions, 16)

	res := &Fig13Result{Params: p, CL: make([]float64, p.Iters), CBO: make([]float64, p.Iters)}
	for _, qi := range p.Queries {
		q := gen.Query(workloads.TPCDS, qi)
		eval := QueryEvaluator{E: e, Q: q}
		res.StartotalMs += e.TrueTime(q, poor, 1)
		res.DefTotalMs += e.TrueTime(q, space.Default(), 1)

		qr := root.SplitNamed(q.ID)
		sel := core.NewSurrogateSelector(space, nil, nil, qr.Split())
		cl := core.New(space, sel, qr.Split())
		cl.Guardrail = nil
		cl.Start = poor
		for i, rec := range RunLoop(space, eval, cl, p.Iters, p.Noise, workloads.Constant{}, qr.Split()) {
			res.CL[i] += rec.TrueTime
		}

		cbo := tuners.NewBO(space, qr.Split())
		cbo.Start = poor
		for i, rec := range RunLoop(space, eval, cbo, p.Iters, p.Noise, workloads.Constant{}, qr.Split()) {
			res.CBO[i] += rec.TrueTime
		}
	}
	return res
}

// Print renders the Figure 13 comparison.
func (r *Fig13Result) Print(w io.Writer) {
	fmt.Fprintf(w, "=== Figure 13: CL vs BO from a poor start (start total=%.0f ms, default total=%.0f ms) ===\n",
		r.StartotalMs, r.DefTotalMs)
	fmt.Fprintf(w, "%6s %14s %14s\n", "iter", "centroid", "bo")
	step := r.Params.Iters / 12
	if step < 1 {
		step = 1
	}
	for i := 0; i < r.Params.Iters; i += step {
		fmt.Fprintf(w, "%6d %14.0f %14.0f\n", i, r.CL[i], r.CBO[i])
	}
	tail := func(xs []float64) float64 {
		n := len(xs) / 5
		if n < 1 {
			n = 1
		}
		return stats.Mean(xs[len(xs)-n:])
	}
	fmt.Fprintf(w, "final fifth mean: CL=%.0f BO=%.0f (speedups vs poor start: %.2f / %.2f)\n",
		tail(r.CL), tail(r.CBO), Speedup(r.StartotalMs, tail(r.CL)), Speedup(r.StartotalMs, tail(r.CBO)))
}

// EmbeddingAblationParams configures the Section 6.2 embedding comparison.
type EmbeddingAblationParams struct {
	// TargetQueries defaults to 18 TPC-DS queries, matching the paper.
	TargetQueries []int
	Iters         int
	FlightRuns    int
	Noise         noise.Model
	Seed          uint64
}

func (p *EmbeddingAblationParams) defaults() {
	if len(p.TargetQueries) == 0 {
		p.TargetQueries = []int{1, 2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59}
	}
	if p.Iters == 0 {
		p.Iters = 30
	}
	if p.FlightRuns == 0 {
		p.FlightRuns = 40
	}
	if p.Noise == (noise.Model{}) {
		p.Noise = noise.Model{FL: 0.3, SL: 0.3}
	}
	if p.Seed == 0 {
		p.Seed = 662
	}
}

// EmbeddingAblationResult compares total execution time per iteration for
// plain (operator-count) vs virtual-operator embeddings.
type EmbeddingAblationResult struct {
	Params  EmbeddingAblationParams
	Plain   []float64
	Virtual []float64
	// MeanGainFromIter5 is the average percent improvement of virtual over
	// plain from iteration 5 onward (paper: 5–10%).
	MeanGainFromIter5 float64
}

// EmbeddingAblation reproduces the "new workload embedding" experiment of
// Section 6.2: CL with a contextual warm-started surrogate whose context is
// either the plain or the virtual-operator embedding.
func EmbeddingAblation(p EmbeddingAblationParams) *EmbeddingAblationResult {
	p.defaults()
	space := sparksim.QuerySpace()
	e := sparksim.NewEngine(space)
	gen := workloads.NewGenerator(p.Seed)
	root := stats.NewRNG(p.Seed)

	res := &EmbeddingAblationResult{
		Params:  p,
		Plain:   make([]float64, p.Iters),
		Virtual: make([]float64, p.Iters),
	}
	for _, scheme := range []embedding.Scheme{embedding.Plain, embedding.Virtual} {
		var embedder *embedding.Embedder
		if scheme == embedding.Plain {
			embedder = embedding.NewPlain()
		} else {
			embedder = embedding.NewVirtual()
		}
		pipe := flighting.NewPipeline(e)
		pipe.Embedder = embedder
		traces, err := pipe.Run(flighting.Config{
			Suite: workloads.TPCDS, ScaleFactor: 1, RunsPerQuery: p.FlightRuns,
			Queries: p.TargetQueries, Seed: p.Seed, Noise: noise.Low,
		})
		if err != nil {
			panic(fmt.Sprintf("experiments: flighting failed: %v", err))
		}
		acc := res.Plain
		if scheme == embedding.Virtual {
			acc = res.Virtual
		}
		for _, qi := range p.TargetQueries {
			q := gen.Query(workloads.TPCDS, qi)
			qr := root.SplitNamed(fmt.Sprintf("%v-%s", scheme, q.ID))
			warm := flighting.LeaveOneOut(traces, q.ID, 300, qr.Split())
			sel := core.NewSurrogateSelector(space, embedder.Embed(q.Plan), warm, qr.Split())
			cl := core.New(space, sel, qr.Split())
			cl.Guardrail = nil
			for i, rec := range RunLoop(space, QueryEvaluator{E: e, Q: q}, cl, p.Iters, p.Noise, workloads.Constant{}, qr.Split()) {
				acc[i] += rec.TrueTime
			}
		}
	}
	var gain float64
	n := 0
	for i := 5; i < p.Iters; i++ {
		gain += PercentImprovement(res.Plain[i], res.Virtual[i])
		n++
	}
	if n > 0 {
		res.MeanGainFromIter5 = gain / float64(n)
	}
	return res
}

// Print renders the embedding ablation.
func (r *EmbeddingAblationResult) Print(w io.Writer) {
	fmt.Fprintf(w, "=== Section 6.2 embedding ablation: plain vs virtual-operator embeddings ===\n")
	fmt.Fprintf(w, "%6s %14s %14s %10s\n", "iter", "plain", "virtual", "gain %")
	step := r.Params.Iters / 10
	if step < 1 {
		step = 1
	}
	for i := 0; i < r.Params.Iters; i += step {
		fmt.Fprintf(w, "%6d %14.0f %14.0f %10.1f\n", i, r.Plain[i], r.Virtual[i],
			PercentImprovement(r.Plain[i], r.Virtual[i]))
	}
	fmt.Fprintf(w, "mean gain from iteration 5: %.1f%%\n", r.MeanGainFromIter5)
}
