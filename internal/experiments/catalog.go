package experiments

import (
	"fmt"
	"io"

	"github.com/rockhopper-db/rockhopper/internal/core"
	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

// CatalogParams configures the catalog-workload study: Centroid Learning on
// star-join queries built over the spec-accurate TPC-H/TPC-DS schemas
// (real table names, cardinalities, and scaling rules) rather than the
// synthetic plan generator.
type CatalogParams struct {
	// Suite selects the catalog ("tpch" or "tpcds").
	Suite string
	// Queries is the number of catalog queries.
	Queries int
	// SF is the benchmark scale factor.
	SF    float64
	Iters int
	Noise noise.Model
	Seed  uint64
}

func (p *CatalogParams) defaults() {
	if p.Suite == "" {
		p.Suite = "tpch"
	}
	if p.Queries == 0 {
		p.Queries = 8
	}
	if p.SF == 0 {
		p.SF = 20
	}
	if p.Iters == 0 {
		p.Iters = 50
	}
	if p.Noise == (noise.Model{}) {
		p.Noise = noise.Model{FL: 0.3, SL: 0.3}
	}
	if p.Seed == 0 {
		p.Seed = 2121
	}
}

// CatalogRow is one catalog query's outcome.
type CatalogRow struct {
	QueryID        string
	FactTable      string
	DefaultMs      float64
	FinalMs        float64
	ImprovementPct float64
}

// CatalogResult summarizes the study.
type CatalogResult struct {
	Params              CatalogParams
	Rows                []CatalogRow
	TotalImprovementPct float64
}

// CatalogStudy tunes each catalog query independently under production
// noise and reports per-query improvements.
func CatalogStudy(p CatalogParams) *CatalogResult {
	p.defaults()
	var cat *workloads.Catalog
	if p.Suite == "tpcds" {
		cat = workloads.TPCDSCatalog()
	} else {
		cat = workloads.TPCHCatalog()
	}
	space := sparksim.QuerySpace()
	e := sparksim.NewEngine(space)
	root := stats.NewRNG(p.Seed)
	res := &CatalogResult{Params: p}
	var defTotal, finalTotal float64
	for i := 1; i <= p.Queries; i++ {
		q, err := cat.CatalogQuery(i, p.SF, p.Seed)
		if err != nil {
			panic(fmt.Sprintf("experiments: catalog query: %v", err))
		}
		qr := root.SplitNamed(q.ID)
		sel := core.NewSurrogateSelector(space, nil, nil, qr.Split())
		cl := core.New(space, sel, qr.Split())
		recs := RunLoop(space, QueryEvaluator{E: e, Q: q}, cl, p.Iters, p.Noise,
			workloads.Jittered{Inner: workloads.Constant{}, Sigma: 0.1, RNG: qr.Split()}, qr.Split())
		def := e.TrueTime(q, space.Default(), 1)
		final := tailMedian(recs, p.Iters/5)
		// The fact table name is the ID suffix after the last '-'.
		fact := q.ID
		for j := len(q.ID) - 1; j >= 0; j-- {
			if q.ID[j] == '-' {
				fact = q.ID[j+1:]
				break
			}
		}
		res.Rows = append(res.Rows, CatalogRow{
			QueryID: q.ID, FactTable: fact,
			DefaultMs: def, FinalMs: final,
			ImprovementPct: PercentImprovement(def, final),
		})
		defTotal += def
		finalTotal += final
	}
	res.TotalImprovementPct = PercentImprovement(defTotal, finalTotal)
	return res
}

// Print renders the study.
func (r *CatalogResult) Print(w io.Writer) {
	fmt.Fprintf(w, "=== Catalog workloads: %s schema at SF %g ===\n", r.Params.Suite, r.Params.SF)
	fmt.Fprintf(w, "%-28s %-14s %12s %12s %8s\n", "query", "fact table", "default", "tuned", "gain %")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-28s %-14s %12.0f %12.0f %8.1f\n",
			row.QueryID, row.FactTable, row.DefaultMs, row.FinalMs, row.ImprovementPct)
	}
	fmt.Fprintf(w, "total improvement: %.1f%%\n", r.TotalImprovementPct)
}
