package monitor

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

func recordedDashboard(t *testing.T, n int, mutate func(i int, cfg sparksim.Config) sparksim.Config) (*Dashboard, *sparksim.Engine, *sparksim.Query) {
	t.Helper()
	e := sparksim.NewEngine(sparksim.QuerySpace())
	q := workloads.NewGenerator(5).Query(workloads.TPCDS, 2)
	d := New(e.Space, q.ID)
	r := stats.NewRNG(9)
	for i := 0; i < n; i++ {
		cfg := e.Space.Default()
		if mutate != nil {
			cfg = mutate(i, cfg)
		}
		o := e.Run(q, cfg, 1, r, noise.Low)
		o.Iteration = i
		stages, _ := e.Explain(q, cfg, 1)
		d.Record(o, stages)
	}
	return d, e, q
}

func TestRecordAndLen(t *testing.T) {
	d, _, _ := recordedDashboard(t, 7, nil)
	if d.Len() != 7 {
		t.Fatalf("len = %d", d.Len())
	}
	evs := d.Events()
	if len(evs) != 7 || evs[3].Iteration != 3 {
		t.Fatal("events copy wrong")
	}
	if evs[0].Tasks == 0 {
		t.Fatal("stage metrics not captured")
	}
}

func TestRecordCopiesConfig(t *testing.T) {
	e := sparksim.NewEngine(sparksim.QuerySpace())
	d := New(e.Space, "sig")
	cfg := e.Space.Default()
	d.Record(sparksim.Observation{Config: cfg, Time: 1, DataSize: 1}, nil)
	cfg[0] = -1
	if d.Events()[0].Config[0] == -1 {
		t.Fatal("dashboard must own config copies")
	}
}

func TestPerformanceTrendDirections(t *testing.T) {
	e := sparksim.NewEngine(sparksim.QuerySpace())
	mk := func(times []float64) *Dashboard {
		d := New(e.Space, "sig")
		for i, tm := range times {
			d.Record(sparksim.Observation{
				Config: e.Space.Default(), Time: tm, DataSize: 1e9, Iteration: i,
			}, nil)
		}
		return d
	}
	up := mk([]float64{100, 110, 120, 130, 140, 150, 160, 170})
	if s, ok := up.PerformanceTrend(); !ok || s <= 0 {
		t.Fatalf("rising series should trend positive: %g %v", s, ok)
	}
	down := mk([]float64{170, 160, 150, 140, 130, 120, 110, 100})
	if s, ok := down.PerformanceTrend(); !ok || s >= 0 {
		t.Fatalf("falling series should trend negative: %g %v", s, ok)
	}
	short := mk([]float64{1, 2})
	if _, ok := short.PerformanceTrend(); ok {
		t.Fatal("trend needs ≥5 events")
	}
}

func TestRootCauseAttributesPartitionChange(t *testing.T) {
	// The tuner moved shuffle partitions from 1800 (bad) to 100 (good)
	// while everything else stayed fixed; RCA must attribute the
	// improvement primarily to shuffle.partitions with a negative (faster)
	// contribution.
	e := sparksim.NewEngine(sparksim.QuerySpace())
	idx := e.Space.Index(sparksim.ShufflePartitions)
	d, _, _ := recordedDashboard(t, 24, func(i int, cfg sparksim.Config) sparksim.Config {
		p := 1800.0
		if i >= 12 {
			p = 100
		}
		// Small deterministic wiggle so the design matrix is not singular.
		out := e.Space.With(cfg, sparksim.ShufflePartitions, p+float64(i%3)*20)
		out = e.Space.With(out, sparksim.MaxPartitionBytes, (110+float64(i%4)*10)*(1<<20))
		return out
	})
	attrs, _, err := d.RootCause(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if attrs[0].Param != sparksim.ShufflePartitions {
		t.Fatalf("top attribution = %s; want shuffle partitions", attrs[0].Param)
	}
	if attrs[0].ContributionMs >= 0 {
		t.Fatalf("moving to fewer partitions should contribute speedup, got %+.0f ms", attrs[0].ContributionMs)
	}
	if attrs[0].DeltaNormalized >= 0 {
		t.Fatal("delta should be negative (partitions decreased)")
	}
	_ = idx
}

func TestRootCauseValidation(t *testing.T) {
	d, _, _ := recordedDashboard(t, 6, nil)
	if _, _, err := d.RootCause(4, 4); err == nil {
		t.Fatal("overlapping windows should error")
	}
	if _, _, err := d.RootCause(1, 2); err == nil {
		t.Fatal("tiny baseline should error")
	}
}

func TestReportAndTrace(t *testing.T) {
	d, _, _ := recordedDashboard(t, 20, func(i int, cfg sparksim.Config) sparksim.Config {
		e := sparksim.NewEngine(sparksim.QuerySpace())
		return e.Space.With(cfg, sparksim.ShufflePartitions, 100+float64(i*10))
	})
	var buf bytes.Buffer
	d.Report(&buf)
	out := buf.String()
	for _, want := range []string{"dashboard:", "observed time", "task count", "trend", "root-cause"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	buf.Reset()
	d.ConfigTrace(&buf, 5)
	if !strings.Contains(buf.String(), "partitions") {
		t.Fatalf("trace missing parameter columns:\n%s", buf.String())
	}
	empty := New(sparksim.QuerySpace(), "x")
	buf.Reset()
	empty.Report(&buf)
	if !strings.Contains(buf.String(), "no executions") {
		t.Fatal("empty report should say so")
	}
}

func TestTrendFiniteUnderNoise(t *testing.T) {
	d, _, _ := recordedDashboard(t, 40, nil)
	s, ok := d.PerformanceTrend()
	if !ok || math.IsNaN(s) || math.IsInf(s, 0) {
		t.Fatalf("trend not finite: %g %v", s, ok)
	}
}
