package monitor

import (
	"strings"
	"testing"
)

// residualNoise is a deterministic pseudo-noise stream (xorshift64*) scaled
// to ±amp — run-to-run simulator jitter in log space without touching the
// global RNG.
type residualNoise struct{ s uint64 }

func (r *residualNoise) next(amp float64) float64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	// Map to [-1, 1) through the top 53 bits, then scale.
	u := float64(r.s>>11) / float64(1<<53)
	return (2*u - 1) * amp
}

// TestDriftStationaryZeroFalsePositives: a long stationary residual stream —
// noise well inside the simulator's run-to-run jitter — must never trip the
// detector. The acceptance bar is zero false positives, so every sample is
// checked, not just the final state.
func TestDriftStationaryZeroFalsePositives(t *testing.T) {
	det := &DriftDetector{}
	noise := &residualNoise{s: 0x9e3779b97f4a7c15}
	for i := 0; i < 5000; i++ {
		if det.Observe(noise.next(0.04)) {
			t.Fatalf("stationary stream tripped the detector at sample %d (score %.3f)", i+1, det.Score())
		}
	}
	if det.Drifting() {
		t.Fatal("detector latched on a stationary stream")
	}
}

// TestDriftTripsWithinTwentyRuns: after a stationary baseline, a sustained
// cost shift (a 30% slowdown is ~0.26 in log space) must flip the detector
// within 20 shifted runs — the ISSUE's acceptance bound.
func TestDriftTripsWithinTwentyRuns(t *testing.T) {
	det := &DriftDetector{}
	noise := &residualNoise{s: 42}
	for i := 0; i < 32; i++ {
		if det.Observe(noise.next(0.03)) {
			t.Fatalf("baseline tripped at sample %d", i+1)
		}
	}
	const shift = 0.26 // log(1.3): a sustained 30% cost regression
	for i := 1; i <= 20; i++ {
		if det.Observe(shift + noise.next(0.03)) {
			t.Logf("tripped after %d shifted runs (score %.3f)", i, det.Score())
			return
		}
	}
	t.Fatalf("detector did not trip within 20 shifted runs (score %.3f)", det.Score())
}

// TestDriftTwoSidedDownward: the detector is two-sided — a model that
// suddenly over-predicts (workload got faster, e.g. after a data purge) is
// drift too, and must trip just as fast.
func TestDriftTwoSidedDownward(t *testing.T) {
	det := &DriftDetector{}
	noise := &residualNoise{s: 7}
	for i := 0; i < 32; i++ {
		det.Observe(noise.next(0.03))
	}
	for i := 1; i <= 20; i++ {
		if det.Observe(-0.26 + noise.next(0.03)) {
			return
		}
	}
	t.Fatalf("downward shift did not trip within 20 runs (score %.3f)", det.Score())
}

// TestDriftLatchesUntilReset: once tripped, on-mean residuals must not
// quietly clear the flag — only Reset does, and Reset restores a clean
// detector that can trip again.
func TestDriftLatchesUntilReset(t *testing.T) {
	trip := func(det *DriftDetector) {
		t.Helper()
		// The Page-Hinkley mean is a running mean of everything observed, so
		// drift is always relative to a baseline — establish one, then shift.
		for i := 0; i < 8; i++ {
			det.Observe(0)
		}
		for i := 0; i < 24 && !det.Drifting(); i++ {
			det.Observe(0.5)
		}
		if !det.Drifting() {
			t.Fatal("sustained 0.5 shift after a zero baseline never tripped")
		}
	}
	det := &DriftDetector{}
	trip(det)
	for i := 0; i < 100; i++ {
		det.Observe(0) // the workload returned on-model — flag must hold
	}
	if !det.Drifting() {
		t.Fatal("detector unlatched without Reset")
	}
	det.Reset()
	if det.Drifting() || det.Samples() != 0 || det.Score() != 0 {
		t.Fatalf("Reset left state behind: drifting=%v samples=%d score=%.3f",
			det.Drifting(), det.Samples(), det.Score())
	}
	trip(det) // a reset detector must be able to trip again
}

// TestDriftMinSamplesGuard: the detector may not trip before MinSamples
// residuals, however large the early excursion — a fresh model's first noisy
// feed is not evidence.
func TestDriftMinSamplesGuard(t *testing.T) {
	det := &DriftDetector{MinSamples: 10}
	if det.Observe(0) {
		t.Fatal("tripped on the baseline sample")
	}
	for i := 2; i <= 9; i++ {
		if det.Observe(5.0) {
			t.Fatalf("tripped at sample %d, before MinSamples=10", i)
		}
	}
	if !det.Observe(5.0) {
		t.Fatal("did not trip at MinSamples with a huge sustained excursion")
	}
}

// TestDriftDashboardWiring: the Dashboard front-end — ms-space residuals in,
// log-space detection inside, and the drift line in the rendered report.
func TestDriftDashboardWiring(t *testing.T) {
	// Report only renders once executions exist; one recorded run is enough.
	d, _, _ := recordedDashboard(t, 1, nil)
	for i := 0; i < 16; i++ {
		if d.ObserveResidual(1000, 1000) {
			t.Fatalf("on-model residual tripped at sample %d", i+1)
		}
	}
	var report strings.Builder
	d.Report(&report)
	if !strings.Contains(report.String(), "model drift: stable") {
		t.Errorf("report missing stable drift line:\n%s", report.String())
	}
	tripped := false
	for i := 0; i < 20 && !tripped; i++ {
		tripped = d.ObserveResidual(1400, 1000) // 40% slower than predicted
	}
	if !tripped || !d.Drifting() {
		t.Fatalf("40%% cost shift did not trip within 20 runs (score %.3f)", d.DriftScore())
	}
	if d.DriftScore() <= 0 {
		t.Errorf("tripped detector reports score %.3f, want > 0", d.DriftScore())
	}
	report.Reset()
	d.Report(&report)
	if !strings.Contains(report.String(), "model drift: DRIFTING") {
		t.Errorf("report missing DRIFTING line:\n%s", report.String())
	}
}
