// Package monitor implements Rockhopper's monitoring dashboard (Section
// 6.3): real-time posterior analysis of query tuning. It records every
// tuned execution together with the configuration-sensitive metrics the
// paper lists — partitions, physical-plan strategy, task numbers, and input
// data sizes — and provides:
//
//   - visualization of configuration changes across iterations,
//   - visualization of performance trends, and
//   - Root Cause Analysis that attributes performance changes between two
//     periods to specific configuration dimensions, "to explain performance
//     changes [and] validate Rockhopper's configuration recommendations".
package monitor

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"github.com/rockhopper-db/rockhopper/internal/ml"
	"github.com/rockhopper-db/rockhopper/internal/sparksim"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/tuners"
)

// Event is one tuned execution with its collected metrics.
type Event struct {
	Iteration  int
	Config     sparksim.Config
	ObservedMs float64
	DataSize   float64
	// Metrics derived from the execution's stage breakdown.
	Tasks          int
	SpillBytes     float64
	BroadcastJoins int
}

// Dashboard accumulates events for one query signature.
type Dashboard struct {
	Space     *sparksim.Space
	Signature string
	events    []Event
	drift     DriftDetector
}

// New returns an empty dashboard.
func New(space *sparksim.Space, signature string) *Dashboard {
	return &Dashboard{Space: space, Signature: signature}
}

// ObserveResidual feeds the signature's drift detector one
// observed-vs-predicted cost pair (both in ms; compared in log space, the
// surrogate's native scale) and reports the drift state after it. Callers
// with no model prediction simply don't feed the detector.
func (d *Dashboard) ObserveResidual(observedMs, predictedMs float64) bool {
	return d.drift.Observe(math.Log1p(observedMs) - math.Log1p(predictedMs))
}

// Drifting reports whether the signature's model has drifted off the
// observed costs (Page-Hinkley detector tripped).
func (d *Dashboard) Drifting() bool { return d.drift.Drifting() }

// DriftScore is the detector's current cumulative excursion.
func (d *Dashboard) DriftScore() float64 { return d.drift.Score() }

// Record adds an execution; stages may be nil when the stage breakdown is
// unavailable (e.g. real clusters exposing only aggregate metrics).
func (d *Dashboard) Record(o sparksim.Observation, stages []sparksim.StageStat) {
	ev := Event{
		Iteration:  o.Iteration,
		Config:     o.Config.Clone(),
		ObservedMs: o.Time,
		DataSize:   o.DataSize,
	}
	if stages != nil {
		ev.Tasks = sparksim.TotalTasks(stages)
		ev.SpillBytes = sparksim.TotalSpill(stages)
		ev.BroadcastJoins = sparksim.BroadcastJoins(stages)
	}
	d.events = append(d.events, ev)
}

// Len returns the number of recorded events.
func (d *Dashboard) Len() int { return len(d.events) }

// Events returns a copy of the recorded events.
func (d *Dashboard) Events() []Event { return append([]Event(nil), d.events...) }

// PerformanceTrend fits observed time against iteration number and input
// size and returns the per-iteration relative slope (positive = regressing).
// ok is false with fewer than 5 events.
func (d *Dashboard) PerformanceTrend() (relSlope float64, ok bool) {
	if len(d.events) < 5 {
		return 0, false
	}
	x := make([][]float64, len(d.events))
	y := make([]float64, len(d.events))
	for i, e := range d.events {
		x[i] = []float64{float64(e.Iteration), math.Log1p(e.DataSize)}
		y[i] = e.ObservedMs
	}
	lin := ml.NewLinear(1e-6)
	if err := lin.Fit(x, y); err != nil {
		return 0, false
	}
	level := stats.Median(y)
	if level <= 0 {
		return 0, false
	}
	return lin.RawSlope(0) / level, true
}

// Attribution explains how much of a performance change one configuration
// dimension is responsible for.
type Attribution struct {
	Param string
	// DeltaNormalized is the mean normalized-config movement between the
	// two periods.
	DeltaNormalized float64
	// ContributionMs is the estimated time change caused by that movement
	// (positive = made the query slower).
	ContributionMs float64
}

// RootCause attributes the performance difference between the first
// `baseline` events and the last `recent` events to configuration
// dimensions, using a linear surface fitted over all events (config in
// normalized coordinates plus log input size). The residual after
// config-attributable changes is reported as dataContribution — the "changes
// in data size" bucket the paper's analysis filters out.
func (d *Dashboard) RootCause(baseline, recent int) (attrs []Attribution, dataContributionMs float64, err error) {
	if baseline < 2 || recent < 2 || baseline+recent > len(d.events) {
		return nil, 0, fmt.Errorf("monitor: need ≥2 baseline and ≥2 recent events within %d recorded", len(d.events))
	}
	x := make([][]float64, len(d.events))
	y := make([]float64, len(d.events))
	for i, e := range d.events {
		x[i] = tuners.ConfigFeatures(d.Space, nil, e.Config, e.DataSize)
		y[i] = e.ObservedMs
	}
	lin := ml.NewLinear(1e-4)
	if err := lin.Fit(x, y); err != nil {
		return nil, 0, fmt.Errorf("monitor: RCA fit: %w", err)
	}
	before := d.events[:baseline]
	after := d.events[len(d.events)-recent:]
	dim := d.Space.Dim()
	meanU := func(evs []Event, j int) float64 {
		var s float64
		for _, e := range evs {
			s += d.Space.Normalize(e.Config)[j]
		}
		return s / float64(len(evs))
	}
	for j := 0; j < dim; j++ {
		delta := meanU(after, j) - meanU(before, j)
		attrs = append(attrs, Attribution{
			Param:           d.Space.Params[j].Name,
			DeltaNormalized: delta,
			ContributionMs:  lin.RawSlope(j) * delta,
		})
	}
	meanSize := func(evs []Event) float64 {
		var s float64
		for _, e := range evs {
			s += math.Log1p(e.DataSize)
		}
		return s / float64(len(evs))
	}
	dataContributionMs = lin.RawSlope(dim) * (meanSize(after) - meanSize(before))
	sort.Slice(attrs, func(a, b int) bool {
		return math.Abs(attrs[a].ContributionMs) > math.Abs(attrs[b].ContributionMs)
	})
	return attrs, dataContributionMs, nil
}

// ConfigTrace renders the per-dimension configuration trajectory (the
// "visualization of configuration changes across iterations"), sampling
// every `every` events.
func (d *Dashboard) ConfigTrace(w io.Writer, every int) {
	if every < 1 {
		every = 1
	}
	fmt.Fprintf(w, "configuration trace for %s\n%6s", d.Signature, "iter")
	for _, p := range d.Space.Params {
		fmt.Fprintf(w, " %18s", shortName(p.Name))
	}
	fmt.Fprintln(w)
	for i := 0; i < len(d.events); i += every {
		e := d.events[i]
		fmt.Fprintf(w, "%6d", e.Iteration)
		for j := range d.Space.Params {
			fmt.Fprintf(w, " %18.4g", e.Config[j])
		}
		fmt.Fprintln(w)
	}
}

// Report renders the full dashboard: performance trend, metric summary, and
// RCA when enough data is available.
func (d *Dashboard) Report(w io.Writer) {
	fmt.Fprintf(w, "== dashboard: %s (%d executions) ==\n", d.Signature, len(d.events))
	if len(d.events) == 0 {
		fmt.Fprintln(w, "no executions recorded")
		return
	}
	times := make([]float64, len(d.events))
	sizes := make([]float64, len(d.events))
	tasks := make([]float64, len(d.events))
	for i, e := range d.events {
		times[i] = e.ObservedMs
		sizes[i] = e.DataSize
		tasks[i] = float64(e.Tasks)
	}
	fmt.Fprintf(w, "observed time: %v\n", stats.Summarize(times))
	fmt.Fprintf(w, "input size:    %v\n", stats.Summarize(sizes))
	fmt.Fprintf(w, "task count:    %v\n", stats.Summarize(tasks))
	if slope, ok := d.PerformanceTrend(); ok {
		verdict := "stable"
		switch {
		case slope < -0.002:
			verdict = "improving"
		case slope > 0.002:
			verdict = "regressing"
		}
		fmt.Fprintf(w, "trend: %+.3f%%/iteration (%s)\n", slope*100, verdict)
	}
	if d.drift.Samples() > 0 {
		state := "stable"
		if d.drift.Drifting() {
			state = "DRIFTING"
		}
		fmt.Fprintf(w, "model drift: %s (score %.3f over %d residuals)\n", state, d.drift.Score(), d.drift.Samples())
	}
	n := len(d.events) / 4
	if n >= 2 {
		attrs, dataMs, err := d.RootCause(n, n)
		if err == nil {
			fmt.Fprintln(w, "root-cause attribution (first quarter → last quarter):")
			for _, a := range attrs {
				fmt.Fprintf(w, "  %-44s Δ=%+.3f  %+.0f ms\n", a.Param, a.DeltaNormalized, a.ContributionMs)
			}
			fmt.Fprintf(w, "  %-44s         %+.0f ms\n", "input data size", dataMs)
		}
	}
}

func shortName(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}
