package monitor

import "math"

// DriftDetector is a two-sided Page-Hinkley change detector over a stream
// of model-prediction residuals (observed minus predicted cost, in the
// model's log space). Page-Hinkley accumulates how far each residual sits
// from the stream's running mean beyond a tolerance Delta; when the
// cumulative excursion since its best value exceeds Lambda, the mean of the
// residual stream has shifted — the model no longer tracks the workload —
// and the detector trips. It is pure arithmetic over the values it is fed:
// no clock, no RNG, no goroutines, so it is deterministic and trivially
// rocklint-clean. Not safe for concurrent use; callers serialize (the
// backend feeds it from the single updater goroutine).
type DriftDetector struct {
	// Delta is the tolerated per-sample deviation from the running mean —
	// noise below it never accumulates. <= 0 means DefaultDriftDelta.
	Delta float64
	// Lambda is the cumulative-excursion threshold at which the detector
	// trips. <= 0 means DefaultDriftLambda.
	Lambda float64
	// MinSamples is the number of residuals required before the detector
	// may trip, so a model's first noisy samples cannot false-positive.
	// <= 0 means DefaultDriftMinSamples.
	MinSamples int

	n    int
	mean float64
	up   float64 // cumulative (x - mean - delta); tracks upward mean shifts
	upMn float64 // running minimum of up
	dn   float64 // cumulative (x - mean + delta); tracks downward shifts
	dnMx float64 // running maximum of dn

	tripped bool
}

// Default Page-Hinkley parameters, sized for log1p(ms) residuals: the
// simulator's run-to-run noise lands well under 0.05 in log space, while a
// real cost shift (data growth, plan change) contributes ~log(shift) per
// sample — a sustained 30% shift trips in a handful of retrain feeds.
const (
	DefaultDriftDelta      = 0.05
	DefaultDriftLambda     = 0.60
	DefaultDriftMinSamples = 8
)

func (d *DriftDetector) delta() float64 {
	if d.Delta > 0 {
		return d.Delta
	}
	return DefaultDriftDelta
}

func (d *DriftDetector) lambda() float64 {
	if d.Lambda > 0 {
		return d.Lambda
	}
	return DefaultDriftLambda
}

func (d *DriftDetector) minSamples() int {
	if d.MinSamples > 0 {
		return d.MinSamples
	}
	return DefaultDriftMinSamples
}

// Observe feeds one residual and reports the detector's state after it.
// Once tripped the detector latches until Reset — a drifted model stays
// flagged until someone (or the retrain loop) decides it is healthy again.
func (d *DriftDetector) Observe(residual float64) bool {
	d.n++
	d.mean += (residual - d.mean) / float64(d.n)
	d.up += residual - d.mean - d.delta()
	d.upMn = math.Min(d.upMn, d.up)
	d.dn += residual - d.mean + d.delta()
	d.dnMx = math.Max(d.dnMx, d.dn)
	if d.n >= d.minSamples() && d.Score() > d.lambda() {
		d.tripped = true
	}
	return d.tripped
}

// Score is the current cumulative excursion — max of the upward and
// downward Page-Hinkley statistics, 0 when the stream sits on its mean.
func (d *DriftDetector) Score() float64 {
	return math.Max(d.up-d.upMn, d.dnMx-d.dn)
}

// Drifting reports whether the detector has tripped.
func (d *DriftDetector) Drifting() bool { return d.tripped }

// Samples is the number of residuals observed since the last Reset.
func (d *DriftDetector) Samples() int { return d.n }

// Reset returns the detector to its initial state, keeping its tuning.
func (d *DriftDetector) Reset() {
	d.n, d.mean = 0, 0
	d.up, d.upMn, d.dn, d.dnMx = 0, 0, 0, 0
	d.tripped = false
}
