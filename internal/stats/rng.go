// Package stats provides the statistical utilities shared across Rockhopper:
// a deterministic, splittable random number generator so every experiment is
// reproducible from a single seed, plus quantiles, summaries, and histogram
// helpers used by the experiment harness.
package stats

import "math"

// RNG is a small, fast, splittable pseudo-random generator based on
// SplitMix64 seeding a xoshiro256**-style state. It is not cryptographically
// secure; it exists so that per-query and per-run random streams can be
// derived independently from a single experiment seed (Split) without the
// statistical coupling that reusing math/rand sources would introduce.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next output; it is used
// to expand seeds into full generator state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives an independent child generator. The child's stream is a
// deterministic function of the parent's state at the time of the call; the
// parent is advanced so successive Splits yield distinct children.
func (r *RNG) Split() *RNG {
	seed := r.Uint64() ^ 0xA5A5A5A5DEADBEEF
	return NewRNG(seed)
}

// SplitNamed derives a child generator keyed by a label, so that streams for
// e.g. "query-17" are stable regardless of the order other streams are drawn.
// It does not advance the parent.
func (r *RNG) SplitNamed(label string) *RNG {
	h := uint64(1469598103934665603) // FNV-64 offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	// Mix with a snapshot of the parent state without advancing it.
	seed := h ^ r.s[0] ^ rotl(r.s[2], 13)
	return NewRNG(seed)
}

// SplitIndexed derives a child generator keyed by an integer index, so that
// run i's stream is a pure function of (parent state, i) — independent of
// the order, or the goroutine, in which sibling streams are derived. It is
// the worker-pool analogue of SplitNamed and, like it, does not advance the
// parent, so a parent shared read-only across a pool is race-free.
func (r *RNG) SplitIndexed(i uint64) *RNG {
	sm := i ^ 0xD1B54A32D192ED03
	seed := splitmix64(&sm) ^ r.s[0] ^ rotl(r.s[2], 13)
	return NewRNG(seed)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// NormFloat64 returns a standard-normal variate via the Box–Muller transform.
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u <= 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Normal returns a normal variate with the given mean and standard deviation.
func (r *RNG) Normal(mean, sd float64) float64 {
	return mean + sd*r.NormFloat64()
}

// LogNormal returns exp(Normal(mu, sigma)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential returns an exponential variate with the given rate (> 0).
func (r *RNG) Exponential(rate float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes xs in place.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
