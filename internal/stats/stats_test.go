package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	t.Parallel()
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed should produce identical streams")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds should diverge")
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	t.Parallel()
	r := NewRNG(1)
	c1 := r.Split()
	c2 := r.Split()
	collisions := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			collisions++
		}
	}
	if collisions > 2 {
		t.Fatalf("split children look correlated: %d collisions", collisions)
	}
}

func TestRNGSplitNamedStable(t *testing.T) {
	t.Parallel()
	r1 := NewRNG(9)
	r2 := NewRNG(9)
	// Drawing other named streams first must not perturb "q17".
	_ = r2.SplitNamed("q01")
	a := r1.SplitNamed("q17").Uint64()
	b := r2.SplitNamed("q17").Uint64()
	if a != b {
		t.Fatal("SplitNamed should be stable regardless of other streams")
	}
}

func TestRNGSplitIndexedStable(t *testing.T) {
	t.Parallel()
	r1 := NewRNG(9)
	r2 := NewRNG(9)
	// Deriving other indexed streams first must not perturb index 17, so
	// parallel workers can derive per-task streams in any order.
	_ = r2.SplitIndexed(3)
	a := r1.SplitIndexed(17).Uint64()
	b := r2.SplitIndexed(17).Uint64()
	if a != b {
		t.Fatal("SplitIndexed should be stable regardless of other streams")
	}
	// Distinct indices give distinct streams, and deriving does not advance
	// the parent.
	if r1.SplitIndexed(17).Uint64() == r1.SplitIndexed(18).Uint64() {
		t.Fatal("adjacent indices should decorrelate")
	}
	c1, c2 := NewRNG(9), NewRNG(9)
	_ = c1.SplitIndexed(5)
	if c1.Uint64() != c2.Uint64() {
		t.Fatal("SplitIndexed must not advance the parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	t.Parallel()
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %g", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	t.Parallel()
	r := NewRNG(7)
	n := 50000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(10, 2)
	}
	if m := Mean(xs); math.Abs(m-10) > 0.1 {
		t.Fatalf("normal mean = %g; want ≈10", m)
	}
	if sd := StdDev(xs); math.Abs(sd-2) > 0.1 {
		t.Fatalf("normal sd = %g; want ≈2", sd)
	}
}

func TestBernoulli(t *testing.T) {
	t.Parallel()
	r := NewRNG(13)
	hits := 0
	for i := 0; i < 20000; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / 20000
	if math.Abs(p-0.3) > 0.02 {
		t.Fatalf("Bernoulli(0.3) frequency = %g", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	t.Parallel()
	r := NewRNG(21)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestQuantileKnown(t *testing.T) {
	t.Parallel()
	xs := []float64{1, 2, 3, 4, 5}
	if Median(xs) != 3 {
		t.Fatalf("median = %g", Median(xs))
	}
	if q := Quantile(xs, 0.25); q != 2 {
		t.Fatalf("q25 = %g; want 2", q)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("q0 = %g; want 1", q)
	}
	if q := Quantile(xs, 1); q != 5 {
		t.Fatalf("q1 = %g; want 5", q)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	t.Parallel()
	xs := []float64{3, 1, 2}
	_ = Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated input")
	}
}

func TestSummarize(t *testing.T) {
	t.Parallel()
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.N != 5 || s.Min != 1 || s.Max != 100 || s.Median != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mean != 22 {
		t.Fatalf("mean = %g", s.Mean)
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func TestConvergenceBand(t *testing.T) {
	t.Parallel()
	runs := [][]float64{
		{10, 8, 6},
		{12, 9, 7},
		{11, 7, 5},
	}
	b := ConvergenceBand(runs)
	if len(b.Median) != 3 {
		t.Fatalf("band length = %d", len(b.Median))
	}
	if b.Median[0] != 11 {
		t.Fatalf("median[0] = %g; want 11", b.Median[0])
	}
	for t2 := 0; t2 < 3; t2++ {
		if !(b.Lo[t2] <= b.Median[t2] && b.Median[t2] <= b.Hi[t2]) {
			t.Fatalf("band ordering violated at %d", t2)
		}
	}
}

func TestHistogram(t *testing.T) {
	t.Parallel()
	xs := []float64{0, 0.1, 0.5, 0.9, 1.0}
	bins := Histogram(xs, 2)
	if len(bins) != 2 {
		t.Fatalf("bins = %d", len(bins))
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != len(xs) {
		t.Fatalf("histogram lost values: %d/%d", total, len(xs))
	}
}

func TestMinMaxArgMin(t *testing.T) {
	t.Parallel()
	xs := []float64{4, -2, 9}
	if Min(xs) != -2 || Max(xs) != 9 || ArgMin(xs) != 1 {
		t.Fatal("min/max/argmin wrong")
	}
	if ArgMin(nil) != -1 {
		t.Fatal("ArgMin(nil) should be -1")
	}
}

func TestClamp(t *testing.T) {
	t.Parallel()
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp wrong")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestPropQuantileMonotone(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Normal(0, 10)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-12 || v < Min(xs)-1e-12 || v > Max(xs)+1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: variance is non-negative and zero for constant samples.
func TestPropVariance(t *testing.T) {
	t.Parallel()
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n := 2 + r.Intn(20)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Normal(0, 1)
		}
		if Variance(xs) < 0 {
			return false
		}
		c := make([]float64, n)
		for i := range c {
			c[i] = 7.5
		}
		return Variance(c) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramConstantValues(t *testing.T) {
	t.Parallel()
	bins := Histogram([]float64{5, 5, 5, 5}, 4)
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 4 {
		t.Fatalf("constant histogram lost values: %d", total)
	}
	if Histogram(nil, 3) != nil || Histogram([]float64{1}, 0) != nil {
		t.Fatal("degenerate inputs should return nil")
	}
}

func TestQuantilePanics(t *testing.T) {
	t.Parallel()
	assertPanics := func(f func()) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		f()
	}
	assertPanics(func() { Quantile(nil, 0.5) })
	assertPanics(func() { Quantile([]float64{1}, 1.5) })
	assertPanics(func() { Quantiles(nil, 0.5) })
}

func TestExponentialAndLogNormal(t *testing.T) {
	t.Parallel()
	r := NewRNG(77)
	n := 40000
	var sumExp, sumLog float64
	for i := 0; i < n; i++ {
		e := r.Exponential(2)
		if e < 0 {
			t.Fatal("exponential negative")
		}
		sumExp += e
		sumLog += math.Log(r.LogNormal(1, 0.5))
	}
	if m := sumExp / float64(n); math.Abs(m-0.5) > 0.02 {
		t.Fatalf("exponential mean = %g; want ≈0.5", m)
	}
	if m := sumLog / float64(n); math.Abs(m-1) > 0.02 {
		t.Fatalf("lognormal log-mean = %g; want ≈1", m)
	}
}
