package stats

import (
	"fmt"
	"math"
	"sort"
)

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the numpy/R default).
// It panics on an empty slice and does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %g out of [0,1]", q))
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return quantileSorted(s, q)
}

func quantileSorted(s []float64, q float64) float64 {
	n := len(s)
	if n == 1 {
		return s[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Quantiles returns several quantiles of xs with a single sort.
func Quantiles(xs []float64, qs ...float64) []float64 {
	if len(xs) == 0 {
		panic("stats: Quantiles of empty slice")
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = quantileSorted(s, q)
	}
	return out
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Mean returns the arithmetic mean of xs; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

// Variance returns the unbiased sample variance of xs; 0 when len < 2.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs; +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, v := range xs {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum of xs; −Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, v := range xs {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMin returns the index of the smallest element; −1 for an empty slice.
func ArgMin(xs []float64) int {
	idx, best := -1, math.Inf(1)
	for i, v := range xs {
		if v < best {
			idx, best = i, v
		}
	}
	return idx
}

// Summary is a five-number-plus-mean description of a sample.
type Summary struct {
	N               int
	Mean, Std       float64
	Min, P5, Median float64
	P95, Max        float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	qs := Quantiles(xs, 0, 0.05, 0.5, 0.95, 1)
	return Summary{
		N:    len(xs),
		Mean: Mean(xs), Std: StdDev(xs),
		Min: qs[0], P5: qs[1], Median: qs[2], P95: qs[3], Max: qs[4],
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g p5=%.4g med=%.4g p95=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.Min, s.P5, s.Median, s.P95, s.Max)
}

// Band holds per-iteration convergence statistics across repeated runs: the
// median trajectory with a 5th–95th percentile confidence band, matching the
// solid-line-plus-shaded-region presentation used throughout the paper's
// figures.
type Band struct {
	Median, Lo, Hi []float64
}

// ConvergenceBand computes a Band from runs[run][iteration].
func ConvergenceBand(runs [][]float64) Band {
	if len(runs) == 0 {
		return Band{}
	}
	iters := len(runs[0])
	b := Band{
		Median: make([]float64, iters),
		Lo:     make([]float64, iters),
		Hi:     make([]float64, iters),
	}
	col := make([]float64, len(runs))
	for t := 0; t < iters; t++ {
		for i, r := range runs {
			col[i] = r[t]
		}
		qs := Quantiles(col, 0.05, 0.5, 0.95)
		b.Lo[t], b.Median[t], b.Hi[t] = qs[0], qs[1], qs[2]
	}
	return b
}

// HistogramBin is one bucket of a Histogram.
type HistogramBin struct {
	Lo, Hi float64
	Count  int
}

// Histogram buckets xs into n equal-width bins spanning [min, max].
func Histogram(xs []float64, n int) []HistogramBin {
	if n <= 0 || len(xs) == 0 {
		return nil
	}
	lo, hi := Min(xs), Max(xs)
	if hi == lo {
		hi = lo + 1
	}
	w := (hi - lo) / float64(n)
	bins := make([]HistogramBin, n)
	for i := range bins {
		bins[i] = HistogramBin{Lo: lo + float64(i)*w, Hi: lo + float64(i+1)*w}
	}
	for _, v := range xs {
		idx := int((v - lo) / w)
		if idx >= n {
			idx = n - 1
		}
		if idx < 0 {
			idx = 0
		}
		bins[idx].Count++
	}
	return bins
}

// Clamp bounds v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
