// Quickstart: tune a single recurrent query with Centroid Learning against
// the bundled Spark simulator. This is the smallest complete Rockhopper
// loop: recommend a configuration, "execute" it, report the outcome.
package main

import (
	"fmt"
	"log"

	"github.com/rockhopper-db/rockhopper"
	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/stats"
)

func main() {
	// The production tuning space: spark.sql.files.maxPartitionBytes,
	// spark.sql.autoBroadcastJoinThreshold, spark.sql.shuffle.partitions.
	space := rockhopper.QuerySpace()

	// The bundled simulator plays the role of the Spark cluster. Query 2 of
	// the synthetic TPC-DS-like suite has ~28% tuning headroom.
	engine := rockhopper.NewEngine(space)
	query, err := rockhopper.NewBenchmarkQuery("tpcds", 2, 99)
	if err != nil {
		log.Fatal(err)
	}

	tuner, err := rockhopper.NewTuner(space, rockhopper.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	rng := stats.NewRNG(11)
	production := noise.Model{FL: 0.3, SL: 0.3} // fluctuations + spikes
	inputBytes := query.Plan.LeafInputBytes()

	defaultMs := engine.TrueTime(query, space.Default(), 1)
	fmt.Printf("query %s: default configuration runs in %.0f ms\n", query.ID, defaultMs)

	var lastTrue float64
	for i := 0; i < 60; i++ {
		cfg := tuner.Recommend(i, inputBytes)
		obs := engine.Run(query, cfg, 1, rng, production)
		obs.Iteration = i
		if err := tuner.Report(obs); err != nil {
			log.Fatal(err)
		}
		lastTrue = obs.TrueTime
		if i%10 == 0 {
			fmt.Printf("iter %2d: observed %7.0f ms (true %7.0f) | partitions=%4.0f maxPartition=%3.0fMB broadcast=%3.0fMB\n",
				i, obs.Time, obs.TrueTime,
				space.Get(cfg, rockhopper.ShufflePartitions),
				space.Get(cfg, rockhopper.MaxPartitionBytes)/(1<<20),
				space.Get(cfg, rockhopper.AutoBroadcastJoinThr)/(1<<20))
		}
	}
	fmt.Printf("final true time %.0f ms (%.1f%% faster than default); guardrail disabled: %v\n",
		lastTrue, 100*(1-lastTrue/defaultMs), tuner.Disabled())
}
