// Production conditions: a recurrent workload whose input size drifts and
// cycles while observations suffer heavy fluctuation noise and 2× spikes —
// the environment of the paper's Section 6.1 dynamic-workload study — tuned
// with the conservative guardrail enabled. Demonstrates that Centroid
// Learning keeps improving under drift and that the guardrail reverts a
// pathological query to defaults instead of chasing noise.
package main

import (
	"fmt"
	"log"
	"math"

	"github.com/rockhopper-db/rockhopper"
	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/stats"
)

func main() {
	space := rockhopper.QuerySpace()
	engine := rockhopper.NewEngine(space)
	rng := stats.NewRNG(5150)

	fmt.Println("— part 1: dynamic recurrent workload under high noise —")
	query, err := rockhopper.NewBenchmarkQuery("tpcds", 2, 99)
	if err != nil {
		log.Fatal(err)
	}
	tuner, err := rockhopper.NewTuner(space, rockhopper.WithSeed(1),
		rockhopper.WithGuardrail(30, 0.01, 3))
	if err != nil {
		log.Fatal(err)
	}
	high := noise.High // FL=1, SL=1: the paper's worst case
	var early, late []float64
	for i := 0; i < 120; i++ {
		// Periodic input sizes with jitter: scale cycles between 1× and 2×.
		scale := 1 + float64(i%20)/20 + 0.1*rng.NormFloat64()
		if scale < 0.2 {
			scale = 0.2
		}
		size := query.Plan.LeafInputBytes() * scale
		cfg := tuner.Recommend(i, size)
		obs := engine.Run(query, cfg, scale, rng, high)
		obs.Iteration = i
		if err := tuner.Report(obs); err != nil {
			log.Fatal(err)
		}
		normed := obs.TrueTime / scale
		if i < 10 {
			early = append(early, normed)
		}
		if i >= 100 {
			late = append(late, normed)
		}
	}
	fmt.Printf("size-normalized true time: first 10 iters median %.0f ms → last 20 median %.0f ms (%.1f%% better)\n",
		stats.Median(early), stats.Median(late), 100*(1-stats.Median(late)/stats.Median(early)))
	fmt.Printf("guardrail disabled autotuning: %v\n\n", tuner.Disabled())

	fmt.Println("— part 2: the guardrail catches a pathological query —")
	// Simulate a query whose performance degrades for reasons unrelated to
	// configuration (e.g. upstream data blow-up the tuner cannot fix).
	bad, err := rockhopper.NewTuner(space, rockhopper.WithSeed(2),
		rockhopper.WithGuardrail(30, 0.01, 3))
	if err != nil {
		log.Fatal(err)
	}
	disabledAt := -1
	for i := 0; i < 80; i++ {
		cfg := bad.Recommend(i, 1e9)
		drift := 2000 * math.Pow(1.04, float64(i)) // 4% slower every run
		observed := noise.Low.Inject(rng, drift)
		if err := bad.Report(rockhopper.Observation{
			Config: cfg, DataSize: 1e9, Time: observed, Iteration: i,
		}); err != nil {
			log.Fatal(err)
		}
		if bad.Disabled() {
			disabledAt = i
			break
		}
	}
	if disabledAt >= 0 {
		fmt.Printf("autotuning disabled at iteration %d; recommendations revert to the default config\n", disabledAt)
	} else {
		fmt.Println("guardrail did not trigger within 80 iterations")
	}
}
