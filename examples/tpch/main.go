// TPC-H sweep with transfer learning: tune all 22 queries of the synthetic
// TPC-H-like suite, warm-starting each tuner from offline observations
// gathered on the TPC-DS-like suite — the deployment protocol behind the
// paper's Figure 14. Prints a per-query improvement table.
package main

import (
	"fmt"
	"log"

	"github.com/rockhopper-db/rockhopper"
	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/stats"
)

const (
	iters      = 40
	flightRuns = 25 // offline samples per TPC-DS query
)

func main() {
	space := rockhopper.QuerySpace()
	engine := rockhopper.NewEngine(space)
	rng := stats.NewRNG(2024)

	// Offline phase: random exploration on a handful of TPC-DS queries
	// builds the warm-start pool (the flighting pipeline's job).
	var warm []rockhopper.BaselinePoint
	for _, dsIdx := range []int{1, 2, 3, 5, 7, 11} {
		q, err := rockhopper.NewBenchmarkQuery("tpcds", dsIdx, 2024)
		if err != nil {
			log.Fatal(err)
		}
		ctx := rockhopper.EmbedPlan(q.Plan)
		for i := 0; i < flightRuns; i++ {
			cfg := space.Random(rng)
			obs := engine.Run(q, cfg, 1, rng, noise.Low)
			warm = append(warm, rockhopper.BaselinePoint{
				Context: ctx, Config: obs.Config, DataSize: obs.DataSize, Time: obs.Time,
			})
		}
	}
	fmt.Printf("offline phase: %d warm-start observations from TPC-DS\n\n", len(warm))

	// Online phase: per-query Centroid Learning on TPC-H under production
	// noise, warm-started from the benchmark knowledge.
	production := noise.Model{FL: 0.3, SL: 0.3}
	fmt.Printf("%-10s %10s %10s %8s\n", "query", "default", "tuned", "gain %")
	var defTotal, tunedTotal float64
	for idx := 1; idx <= 22; idx++ {
		q, err := rockhopper.NewBenchmarkQuery("tpch", idx, 2024)
		if err != nil {
			log.Fatal(err)
		}
		tuner, err := rockhopper.NewTuner(space,
			rockhopper.WithSeed(uint64(1000+idx)),
			rockhopper.WithWarmStart(rockhopper.EmbedPlan(q.Plan), warm),
		)
		if err != nil {
			log.Fatal(err)
		}
		size := q.Plan.LeafInputBytes()
		var tail []float64
		for i := 0; i < iters; i++ {
			cfg := tuner.Recommend(i, size)
			obs := engine.Run(q, cfg, 1, rng, production)
			obs.Iteration = i
			if err := tuner.Report(obs); err != nil {
				log.Fatal(err)
			}
			if i >= iters-iters/5 {
				tail = append(tail, obs.TrueTime)
			}
		}
		def := engine.TrueTime(q, space.Default(), 1)
		tuned := stats.Median(tail)
		defTotal += def
		tunedTotal += tuned
		fmt.Printf("%-10s %10.0f %10.0f %8.1f\n", q.ID, def, tuned, 100*(1-tuned/def))
	}
	fmt.Printf("\ntotal: %.0f → %.0f ms (%.1f%% improvement)\n",
		defTotal, tunedTotal, 100*(1-tunedTotal/defTotal))
}
