// App-level optimization: a recurrent notebook runs three queries inside one
// Spark application. Query-level knobs can change per query, but executor
// count and memory are fixed at startup — so after each run, Algorithm 2
// jointly scores app-level candidates against every query's surrogate and
// caches the winner under the notebook's artifact id for the next
// submission (Section 4.4 of the paper).
package main

import (
	"fmt"
	"log"

	"github.com/rockhopper-db/rockhopper"
	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/stats"
	"github.com/rockhopper-db/rockhopper/internal/workloads"
)

func main() {
	space := rockhopper.FullSpace() // query-level + app-level parameters
	engine := rockhopper.NewEngine(space)
	rng := stats.NewRNG(31)

	// A synthetic customer notebook with three queries.
	gen := workloads.NewGenerator(31)
	app := gen.Notebook(1, 3)
	artifact := rockhopper.ArtifactID([]byte("customer notebook v3"))

	// The notebook currently runs under-provisioned.
	current := space.With(space.Default(), rockhopper.ExecutorInstances, 3)
	_, startWall := engine.RunApp(app, current, 1, rng, nil)
	fmt.Printf("artifact %s: wall time at current app config = %.0f ms\n", artifact, startWall)

	// During the run, each query accumulates tuning observations (here:
	// random exploration around the current config, with mild noise).
	histories := make([]rockhopper.QueryHistory, 0, len(app.Queries))
	for _, q := range app.Queries {
		var obs []rockhopper.Observation
		for i := 0; i < 40; i++ {
			cand := space.Neighborhood(current, 0.3, 1, rng)[0]
			obs = append(obs, engine.Run(q, cand, 1, rng, noise.Low))
		}
		histories = append(histories, rockhopper.QueryHistory{
			ID: q.ID, Centroid: current, Observations: obs,
		})
	}

	// App completion: compute and cache the jointly optimal app config.
	appTuner, err := rockhopper.NewAppTuner(space, 77)
	if err != nil {
		log.Fatal(err)
	}
	best, err := appTuner.ComputeCache(artifact, current, histories)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("joint optimizer chose: executors=%.0f memory=%.0fGB\n",
		space.Get(best, rockhopper.ExecutorInstances),
		space.Get(best, rockhopper.ExecutorMemoryGB))

	// Next submission: the pre-computed config is a cache hit — no
	// optimization on the critical path.
	cached, ok := appTuner.Cached(artifact)
	if !ok {
		log.Fatal("expected an app-cache hit")
	}
	_, newWall := engine.RunApp(app, cached, 1, rng, nil)
	fmt.Printf("wall time at cached app config = %.0f ms (%.1f%% improvement)\n",
		newWall, 100*(1-newWall/startWall))
}
