// Monitoring and root-cause analysis: tune a query while the dashboard
// records every execution's configuration and runtime metrics (tasks,
// spill, join strategy), then render the posterior analysis the production
// system exposes to customers — configuration traces, performance trends,
// and an attribution of the observed speedup to specific Spark parameters
// (Section 6.3 of the paper).
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/rockhopper-db/rockhopper"
	"github.com/rockhopper-db/rockhopper/internal/noise"
	"github.com/rockhopper-db/rockhopper/internal/stats"
)

func main() {
	space := rockhopper.QuerySpace()
	engine := rockhopper.NewEngine(space)
	query, err := rockhopper.NewBenchmarkQuery("tpcds", 2, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query signature: %s\n\n", rockhopper.SignatureOf(query.Plan))

	tuner, err := rockhopper.NewTuner(space, rockhopper.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	dash := rockhopper.NewDashboard(space, query.ID)

	rng := stats.NewRNG(11)
	production := noise.Model{FL: 0.3, SL: 0.3}
	size := query.Plan.LeafInputBytes()
	for i := 0; i < 60; i++ {
		cfg := tuner.Recommend(i, size)
		obs := engine.Run(query, cfg, 1, rng, production)
		obs.Iteration = i
		if err := tuner.Report(obs); err != nil {
			log.Fatal(err)
		}
		// The query listener collects the stage metrics alongside the
		// observation; on a real cluster these come from the Spark event log.
		stages, _ := engine.Explain(query, cfg, 1)
		dash.Record(obs, stages)
	}

	dash.ConfigTrace(os.Stdout, 10)
	fmt.Println()
	dash.Report(os.Stdout)
}
