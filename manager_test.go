package rockhopper

import (
	"fmt"
	"sync"
	"testing"
)

func TestManagerValidation(t *testing.T) {
	if _, err := NewManager(nil); err == nil {
		t.Fatal("nil space should error")
	}
	if _, err := NewManager(QuerySpace(), WithStart(Config{1})); err == nil {
		t.Fatal("bad default options should be caught at construction")
	}
	m, err := NewManager(QuerySpace())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Tuner(""); err == nil {
		t.Fatal("empty signature should error")
	}
}

func TestManagerReturnsSameTunerPerSignature(t *testing.T) {
	m, err := NewManager(QuerySpace())
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.Tuner("sig-1")
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Tuner("sig-1")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same signature should share a tuner")
	}
	c, _ := m.Tuner("sig-2")
	if c == a {
		t.Fatal("different signatures must not share tuners")
	}
	if m.Len() != 2 {
		t.Fatalf("len = %d", m.Len())
	}
	sigs := m.Signatures()
	if len(sigs) != 2 || sigs[0] != "sig-1" || sigs[1] != "sig-2" {
		t.Fatalf("signatures = %v", sigs)
	}
}

func TestManagerSignatureSeedsDiffer(t *testing.T) {
	m, _ := NewManager(QuerySpace(), WithoutGuardrail())
	a, _ := m.Tuner("alpha")
	b, _ := m.Tuner("beta")
	// Feed identical histories; proposals at iteration 1 should diverge
	// because the candidate streams are independent.
	def := QuerySpace().Default()
	for _, tn := range []*Tuner{a, b} {
		for i := 0; i < 6; i++ {
			if err := tn.Report(Observation{Config: def, DataSize: 1e9, Time: 1000 + float64(i), Iteration: i}); err != nil {
				t.Fatal(err)
			}
		}
	}
	ca := a.Recommend(6, 1e9)
	cb := b.Recommend(6, 1e9)
	same := true
	for i := range ca {
		if ca[i] != cb[i] {
			same = false
		}
	}
	if same {
		t.Fatal("per-signature random streams should differ")
	}
}

func TestManagerForget(t *testing.T) {
	m, _ := NewManager(QuerySpace())
	first, _ := m.Tuner("sig")
	m.Forget("sig")
	second, _ := m.Tuner("sig")
	if first == second {
		t.Fatal("forget should drop the tuner")
	}
	m.Forget("never-existed") // no-op
}

func TestManagerDisabledView(t *testing.T) {
	m, _ := NewManager(QuerySpace(), WithGuardrail(5, 0.005, 2))
	tn, _ := m.Tuner("regressing")
	for i := 0; i < 60 && !tn.Disabled(); i++ {
		cfg := tn.Recommend(i, 1e9)
		growth := 1000.0
		for k := 0; k < i; k++ {
			growth *= 1.12
		}
		if err := tn.Report(Observation{Config: cfg, DataSize: 1e9, Time: growth, Iteration: i}); err != nil {
			t.Fatal(err)
		}
	}
	_, _ = m.Tuner("healthy")
	disabled := m.Disabled()
	if len(disabled) != 1 || disabled[0] != "regressing" {
		t.Fatalf("disabled = %v", disabled)
	}
}

func TestManagerConcurrentAccess(t *testing.T) {
	m, _ := NewManager(QuerySpace(), WithoutGuardrail())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				sig := fmt.Sprintf("sig-%d", (g+i)%5)
				tn, err := m.Tuner(sig)
				if err != nil {
					t.Error(err)
					return
				}
				_ = tn
				m.Len()
				m.Signatures()
			}
		}(g)
	}
	wg.Wait()
	if m.Len() != 5 {
		t.Fatalf("len = %d", m.Len())
	}
}
